package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"npqm/internal/queue"
)

func newTest(t *testing.T, shards, flows, segments int) *Engine {
	t.Helper()
	e, err := New(Config{Shards: shards, NumFlows: flows, NumSegments: segments, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: -1, NumSegments: 16}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := New(Config{Shards: 8}); err == nil {
		t.Error("zero NumSegments accepted")
	}
	// The pool is shared: fewer segments than shards is legal now.
	if _, err := New(Config{Shards: 8, NumSegments: 4}); err != nil {
		t.Errorf("NumSegments < Shards rejected on a shared pool: %v", err)
	}
	if _, err := New(Config{Shards: 4, NumSegments: 16, PerFlowLimit: -2}); err == nil {
		t.Error("negative PerFlowLimit accepted")
	}
	// Non-power-of-two shard counts round up.
	e, err := New(Config{Shards: 5, NumFlows: 16, NumSegments: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Shards(); got != 8 {
		t.Errorf("Shards() = %d, want 8", got)
	}
	// Defaults.
	e, err = New(Config{NumSegments: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != DefaultShards || e.NumFlows() != queue.DefaultNumQueues {
		t.Errorf("defaults: shards=%d flows=%d", e.Shards(), e.NumFlows())
	}
}

func TestShardOfStable(t *testing.T) {
	e := newTest(t, 16, 1024, 4096)
	for flow := uint32(0); flow < 1024; flow++ {
		a, b := e.ShardOf(flow), e.ShardOf(flow)
		if a != b {
			t.Fatalf("ShardOf(%d) unstable: %d vs %d", flow, a, b)
		}
		if a < 0 || a >= e.Shards() {
			t.Fatalf("ShardOf(%d) = %d out of range", flow, a)
		}
	}
}

func TestShardBalance(t *testing.T) {
	// Sequential flow IDs (the common traffic-generator pattern) must
	// spread across shards, not pile onto one.
	e := newTest(t, 16, 32768, 65536)
	counts := make([]int, e.Shards())
	for flow := uint32(0); flow < 32768; flow++ {
		counts[e.ShardOf(flow)]++
	}
	want := 32768 / e.Shards()
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("shard %d owns %d of 32768 flows (ideal %d)", i, c, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	e := newTest(t, 4, 256, 1024)
	pkt := bytes.Repeat([]byte{0x5a}, 200)
	n, err := e.EnqueuePacket(7, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("enqueued %d segments, want 4", n)
	}
	if l, _ := e.Len(7); l != 4 {
		t.Errorf("Len = %d, want 4", l)
	}
	occ, err := e.Occupancy(7)
	if err != nil {
		t.Fatal(err)
	}
	if occ.Bytes != 200 || occ.Packets != 1 {
		t.Errorf("Occupancy = %+v", occ)
	}
	got, err := e.DequeuePacket(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pkt) {
		t.Errorf("payload mismatch: %d bytes", len(got))
	}
	e.ReleaseBuffer(got)
	if _, err := e.DequeuePacket(7); !errors.Is(err, queue.ErrQueueEmpty) {
		t.Errorf("dequeue of empty flow: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMovePacketSameAndCrossShard(t *testing.T) {
	e := newTest(t, 4, 1024, 4096)
	// Find a same-shard pair and a cross-shard pair.
	same, cross := uint32(0), uint32(0)
	foundSame, foundCross := false, false
	for f := uint32(1); f < 1024; f++ {
		if e.ShardOf(f) == e.ShardOf(0) && !foundSame {
			same, foundSame = f, true
		}
		if e.ShardOf(f) != e.ShardOf(0) && !foundCross {
			cross, foundCross = f, true
		}
		if foundSame && foundCross {
			break
		}
	}
	if !foundSame || !foundCross {
		t.Fatal("could not find shard pairs")
	}
	pkt := bytes.Repeat([]byte{0xcd}, 150)

	if _, err := e.EnqueuePacket(0, pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MovePacket(0, same); err != nil {
		t.Fatalf("same-shard move: %v", err)
	}
	got, err := e.DequeuePacket(same)
	if err != nil || !bytes.Equal(got, pkt) {
		t.Fatalf("same-shard move lost data: %v", err)
	}
	e.ReleaseBuffer(got)

	if _, err := e.EnqueuePacket(0, pkt); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if _, err := e.MovePacket(0, cross); err != nil {
		t.Fatalf("cross-shard move: %v", err)
	}
	// A move is neither an arrival nor a departure: counters must not
	// depend on whether the flows happened to share a shard.
	after := e.Stats()
	if after.EnqueuedPackets != before.EnqueuedPackets ||
		after.DequeuedPackets != before.DequeuedPackets ||
		after.Rejected != before.Rejected {
		t.Errorf("cross-shard move perturbed stats: before %+v after %+v", before, after)
	}
	got, err = e.DequeuePacket(cross)
	if err != nil || !bytes.Equal(got, pkt) {
		t.Fatalf("cross-shard move lost data: %v", err)
	}
	e.ReleaseBuffer(got)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMovePacketCrossShardNoData(t *testing.T) {
	// Cross-shard moves are pointer relinking on the shared slab, so they
	// work even with payload storage off (the pre-segstore engine had to
	// refuse them: it could only move across shards by copying data).
	e, err := New(Config{Shards: 4, NumFlows: 1024, NumSegments: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var cross uint32
	for f := uint32(1); f < 1024; f++ {
		if e.ShardOf(f) != e.ShardOf(0) {
			cross = f
			break
		}
	}
	if _, err := e.EnqueuePacket(0, make([]byte, 130)); err != nil {
		t.Fatal(err)
	}
	if n, err := e.MovePacket(0, cross); err != nil || n != 3 {
		t.Fatalf("cross-shard move without data storage = (%d, %v), want (3, nil)", n, err)
	}
	if l, _ := e.Len(cross); l != 3 {
		t.Errorf("destination holds %d segments, want 3", l)
	}
	if l, _ := e.Len(0); l != 0 {
		t.Errorf("source still holds %d segments", l)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPerFlowLimit(t *testing.T) {
	e, err := New(Config{Shards: 2, NumFlows: 64, NumSegments: 256, StoreData: true, PerFlowLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnqueuePacket(3, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnqueuePacket(3, make([]byte, 64)); !errors.Is(err, queue.ErrQueueLimit) {
		t.Errorf("over-limit enqueue: %v", err)
	}
	st := e.Stats()
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if err := e.SetFlowLimit(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnqueuePacket(3, make([]byte, 64)); err != nil {
		t.Errorf("enqueue after cap removal: %v", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	e := newTest(t, 4, 256, 2048)
	const n = 100
	batch := make([]EnqueueReq, n)
	for i := range batch {
		pkt := make([]byte, 100)
		binary.LittleEndian.PutUint32(pkt, uint32(i))
		batch[i] = EnqueueReq{Flow: uint32(i % 8), Data: pkt}
	}
	segs, errs := e.EnqueueBatch(batch)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch[%d]: %v", i, err)
		}
	}
	if segs != n*2 {
		t.Errorf("segments = %d, want %d", segs, n*2)
	}
	st := e.Stats()
	if st.EnqueuedPackets != n || st.QueuedSegments != n*2 {
		t.Errorf("stats after batch: %+v", st)
	}

	// Dequeue everything batch-wise; packets on each flow must come back
	// in the order the enqueue batch listed them.
	flows := make([]uint32, n)
	for i := range flows {
		flows[i] = uint32(i % 8) // same relative order as the enqueues
	}
	// Re-sort flows so that per-flow order of requests matches enqueue
	// order: flow f was enqueued at i = f, f+8, f+16, ...
	k := 0
	for f := uint32(0); f < 8; f++ {
		for i := int(f); i < n; i += 8 {
			flows[k] = f
			k++
		}
	}
	pkts, derrs := e.DequeueBatch(flows)
	k = 0
	for f := uint32(0); f < 8; f++ {
		for i := int(f); i < n; i += 8 {
			if derrs[k] != nil {
				t.Fatalf("dequeue flow %d: %v", f, derrs[k])
			}
			got := binary.LittleEndian.Uint32(pkts[k])
			if got != uint32(i) {
				t.Errorf("flow %d: got packet %d, want %d", f, got, i)
			}
			e.ReleaseBuffer(pkts[k])
			k++
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free := e.FreeSegments(); free != 2048 {
		t.Errorf("FreeSegments = %d, want 2048 after full drain", free)
	}
}

func TestBatchPartialFailure(t *testing.T) {
	e := newTest(t, 2, 64, 64)
	big := make([]byte, 65*queue.SegmentBytes) // more than the whole pool
	_, errs := e.EnqueueBatch([]EnqueueReq{
		{Flow: 1, Data: make([]byte, 64)},
		{Flow: 2, Data: big},
		{Flow: 3, Data: make([]byte, 64)},
	})
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("good packets rejected: %v %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], queue.ErrNoFreeSegments) {
		t.Errorf("oversized packet: %v", errs[1])
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentConservation hammers the engine from concurrent producers
// and consumers, then drains and checks that no segment was leaked or
// double-freed: allocated + free == total across shards. Run under -race.
func TestConcurrentConservation(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		flows     = 512
		perProd   = 2000
		segments  = 8192
	)
	e := newTest(t, 8, flows, segments)
	var prodWG, consWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			pkt := make([]byte, 130) // 3 segments
			for i := 0; i < perProd; i++ {
				flow := uint32((p*perProd + i) % flows)
				if _, err := e.EnqueuePacket(flow, pkt); err != nil &&
					!errors.Is(err, queue.ErrNoFreeSegments) {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				flow := uint32((c*1000 + i) % flows)
				data, err := e.DequeuePacket(flow)
				if err == nil {
					e.ReleaseBuffer(data)
				} else if !errors.Is(err, queue.ErrQueueEmpty) && !errors.Is(err, queue.ErrNoPacket) {
					t.Errorf("consumer %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	// Wait for producers, stop consumers, then drain what is left.
	prodWG.Wait()
	close(stop)
	consWG.Wait()

	for f := uint32(0); f < flows; f++ {
		for {
			data, err := e.DequeuePacket(f)
			if err != nil {
				break
			}
			e.ReleaseBuffer(data)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free := e.FreeSegments(); free != segments {
		t.Errorf("FreeSegments = %d, want %d after drain", free, segments)
	}
	st := e.Stats()
	if st.EnqueuedSegments != st.DequeuedSegments {
		t.Errorf("segment conservation: enqueued %d != dequeued %d",
			st.EnqueuedSegments, st.DequeuedSegments)
	}
	if st.QueuedSegments != 0 || st.BufferedBytes != 0 {
		t.Errorf("residual occupancy: %+v", st)
	}
}

// TestConcurrentPerFlowFIFO checks FIFO order per flow under concurrency:
// each producer owns a disjoint flow set and stamps packets with sequence
// numbers; each consumer owns a disjoint flow set and asserts that
// sequence numbers arrive strictly in order. Run under -race.
func TestConcurrentPerFlowFIFO(t *testing.T) {
	const (
		workers = 4
		flows   = 64
		perFlow = 500
	)
	e := newTest(t, 8, flows, 16384)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { // producer for flows w, w+workers, ...
			defer wg.Done()
			for seq := 0; seq < perFlow; seq++ {
				for f := uint32(w); f < flows; f += workers {
					pkt := make([]byte, 72) // 2 segments
					binary.LittleEndian.PutUint32(pkt, uint32(seq))
					for {
						_, err := e.EnqueuePacket(f, pkt)
						if err == nil {
							break
						}
						if !errors.Is(err, queue.ErrNoFreeSegments) {
							t.Errorf("producer flow %d: %v", f, err)
							return
						}
					}
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) { // consumer for the same flow set
			defer wg.Done()
			next := make(map[uint32]uint32)
			remaining := (flows / workers) * perFlow
			for remaining > 0 {
				for f := uint32(w); f < flows; f += workers {
					data, err := e.DequeuePacket(f)
					if err != nil {
						if errors.Is(err, queue.ErrQueueEmpty) || errors.Is(err, queue.ErrNoPacket) {
							continue
						}
						t.Errorf("consumer flow %d: %v", f, err)
						return
					}
					seq := binary.LittleEndian.Uint32(data)
					e.ReleaseBuffer(data)
					if seq != next[f] {
						t.Errorf("flow %d: got seq %d, want %d", f, seq, next[f])
						return
					}
					next[f]++
					remaining--
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBatches drives the batch API from many goroutines at once.
func TestConcurrentBatches(t *testing.T) {
	const (
		workers   = 4
		rounds    = 200
		batchSize = 32
	)
	e := newTest(t, 8, 1024, 32768)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]EnqueueReq, batchSize)
			flows := make([]uint32, batchSize)
			for r := 0; r < rounds; r++ {
				for i := range batch {
					f := uint32((w*rounds+r+i)*7) % 1024
					batch[i] = EnqueueReq{Flow: f, Data: make([]byte, 64)}
					flows[i] = f
				}
				if _, errs := e.EnqueueBatch(batch); errs != nil {
					for _, err := range errs {
						if err != nil && !errors.Is(err, queue.ErrNoFreeSegments) {
							t.Errorf("worker %d enqueue: %v", w, err)
							return
						}
					}
				}
				pkts, errs := e.DequeueBatch(flows)
				for i, err := range errs {
					if err == nil {
						e.ReleaseBuffer(pkts[i])
					} else if !errors.Is(err, queue.ErrQueueEmpty) && !errors.Is(err, queue.ErrNoPacket) {
						t.Errorf("worker %d dequeue: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain and verify conservation.
	for f := uint32(0); f < 1024; f++ {
		for {
			data, err := e.DequeuePacket(f)
			if err != nil {
				break
			}
			e.ReleaseBuffer(data)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free := e.FreeSegments(); free != 32768 {
		t.Errorf("FreeSegments = %d, want 32768", free)
	}
}

func TestShardStats(t *testing.T) {
	e := newTest(t, 4, 256, 1024)
	for f := uint32(0); f < 256; f++ {
		if _, err := e.EnqueuePacket(f, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	per := e.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats len = %d", len(per))
	}
	var pkts uint64
	var queued int
	for _, s := range per {
		pkts += s.EnqueuedPackets
		queued += s.QueuedSegments
		if s.EnqueuedPackets == 0 {
			t.Errorf("shard %d saw no traffic — hash imbalance", s.Shard)
		}
	}
	if pkts != 256 {
		t.Errorf("total enqueued = %d, want 256", pkts)
	}
	if queued != 256 {
		t.Errorf("queued across shards = %d, want 256", queued)
	}
	if st := e.Stats(); st.QueuedSegments+st.FreeSegments != 1024 {
		t.Errorf("queued %d + free %d != pool 1024", st.QueuedSegments, st.FreeSegments)
	}
}

func BenchmarkEngineEnqueueDequeue(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, err := New(Config{Shards: shards, NumFlows: 4096, NumSegments: 1 << 16, StoreData: true})
			if err != nil {
				b.Fatal(err)
			}
			pkt := make([]byte, 320)
			b.RunParallel(func(pb *testing.PB) {
				var i uint32
				for pb.Next() {
					f := i % 4096
					i++
					if _, err := e.EnqueuePacket(f, pkt); err != nil {
						continue
					}
					if data, err := e.DequeuePacket(f); err == nil {
						e.ReleaseBuffer(data)
					}
				}
			})
		})
	}
}

// TestHotFlowConsumesSharedPool is the shared-buffer acceptance test: with
// several shards, one hot flow must be able to occupy (nearly) the whole
// pool. Under the old per-shard pool split a flow could never exceed
// NumSegments/Shards — 25% here.
func TestHotFlowConsumesSharedPool(t *testing.T) {
	const segments = 4096
	e := newTest(t, 4, 256, segments)
	hot := uint32(42)
	for {
		if _, err := e.EnqueuePacket(hot, make([]byte, queue.SegmentBytes)); err != nil {
			if !errors.Is(err, queue.ErrNoFreeSegments) {
				t.Fatal(err)
			}
			break
		}
	}
	n, err := e.Len(hot)
	if err != nil {
		t.Fatal(err)
	}
	if min := segments * 9 / 10; n < min {
		t.Fatalf("hot flow occupies %d of %d segments, want >= %d (90%%)", n, segments, min)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Drain and confirm the pool comes back whole.
	for {
		data, err := e.DequeuePacket(hot)
		if err != nil {
			break
		}
		e.ReleaseBuffer(data)
	}
	if free := e.FreeSegments(); free != segments {
		t.Fatalf("FreeSegments = %d, want %d after drain", free, segments)
	}
}

// TestConcurrentCrossShardMoves hammers cross-shard MovePacket (pointer
// relinking between shards on the shared slab) concurrently with producers
// and consumers, then drains and checks segment conservation and payload
// integrity. Run under -race.
func TestConcurrentCrossShardMoves(t *testing.T) {
	const (
		flows    = 64
		segments = 8192
		perProd  = 3000
	)
	e := newTest(t, 8, flows, segments)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Producers: stamped payloads so corruption is detectable.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pkt := make([]byte, 130)
			for i := 0; i < perProd; i++ {
				for b := range pkt {
					pkt[b] = byte(i)
				}
				f := uint32((p*perProd + i) % flows)
				if _, err := e.EnqueuePacket(f, pkt); err != nil &&
					!errors.Is(err, queue.ErrNoFreeSegments) {
					t.Errorf("producer: %v", err)
					return
				}
			}
		}(p)
	}
	// Movers: shuffle head packets between random flows (mostly cross-shard).
	var moved atomic.Uint64
	for m := 0; m < 3; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				from := uint32((m*31 + i*7) % flows)
				to := uint32((m*17 + i*13) % flows)
				if _, err := e.MovePacket(from, to); err == nil {
					moved.Add(1)
				} else if !errors.Is(err, queue.ErrQueueEmpty) && !errors.Is(err, queue.ErrNoPacket) {
					t.Errorf("mover: %v", err)
					return
				}
			}
		}(m)
	}
	// Consumers: drain through the direct path.
	var consWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				data, err := e.DequeuePacket(uint32((c*100 + i) % flows))
				if err == nil {
					// Every byte of a packet must carry the same stamp:
					// a torn move would interleave two packets.
					for _, b := range data {
						if b != data[0] {
							t.Errorf("corrupt packet: stamp %d vs %d", data[0], b)
							e.ReleaseBuffer(data)
							return
						}
					}
					e.ReleaseBuffer(data)
				} else if !errors.Is(err, queue.ErrQueueEmpty) && !errors.Is(err, queue.ErrNoPacket) {
					t.Errorf("consumer: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	consWG.Wait()
	for f := uint32(0); f < flows; f++ {
		for {
			data, err := e.DequeuePacket(f)
			if err != nil {
				break
			}
			e.ReleaseBuffer(data)
		}
	}
	if moved.Load() == 0 {
		t.Error("no moves succeeded; test exercised nothing")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free := e.FreeSegments(); free != segments {
		t.Fatalf("FreeSegments = %d, want %d after drain", free, segments)
	}
	st := e.Stats()
	if st.EnqueuedSegments != st.DequeuedSegments {
		t.Errorf("conservation: enqueued %d != dequeued %d", st.EnqueuedSegments, st.DequeuedSegments)
	}
}

// TestReleaseBoundsPool verifies the reassembly-buffer pool drops oversized
// buffers instead of pinning them: a giant reassembled packet must not
// leave a giant buffer in the pool.
func TestReleaseBoundsPool(t *testing.T) {
	e := newTest(t, 1, 16, 1024)
	big := make([]byte, 200*queue.SegmentBytes)
	if _, err := e.EnqueuePacket(1, big); err != nil {
		t.Fatal(err)
	}
	data, err := e.DequeuePacket(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(big) {
		t.Fatalf("reassembled %d bytes, want %d", len(data), len(big))
	}
	e.ReleaseBuffer(data) // must not be pooled
	if buf := e.getBuf(); cap(buf) > maxPooledBufBytes {
		t.Fatalf("pool returned a %d-byte buffer, cap is %d", cap(buf), maxPooledBufBytes)
	}
	// Small buffers do recycle.
	small := make([]byte, 0, 2*queue.SegmentBytes)
	e.putBuf(small)
}
