package engine

import (
	"fmt"
	"math/bits"

	"npqm/internal/queue"
	"npqm/internal/stats"
)

// Stats is an aggregate snapshot of engine activity and occupancy across
// all shards. Counters are cumulative since New.
type Stats struct {
	Shards int

	// Traffic counters.
	EnqueuedPackets  uint64
	EnqueuedSegments uint64
	DequeuedPackets  uint64
	DequeuedSegments uint64
	Rejected         uint64 // enqueues refused (pool exhausted or flow capped)

	// Policy counters. Dropped arrivals were refused by the admission
	// policy and never buffered; pushed-out packets were buffered and then
	// evicted (LQD push-out), so conservation reads
	// EnqueuedSegments = DequeuedSegments + PushedOutSegments + QueuedSegments.
	DroppedPackets    uint64
	DroppedSegments   uint64
	PushedOutPackets  uint64
	PushedOutSegments uint64

	// Transmit side (ports served through Serve). Packets delivered by
	// port workers are also counted in DequeuedPackets/Segments — the
	// transmit counters slice that total by delivery path and add the
	// pacing signal. See PortStats for the per-port breakdown.
	TransmittedPackets uint64
	TransmittedBytes   uint64
	Throttled          uint64 // port-worker sleeps waiting for shaper tokens

	// Occupancy.
	FreeSegments   int   // shared-pool free population (depot + caches)
	QueuedSegments int   // segments currently linked into flow queues
	BufferedBytes  int64 // payload bytes across all queued segments
	ActiveFlows    int   // flows with at least one queued segment

	// Residence-time sampling (zero unless Config.ResidenceSample > 0):
	// enqueue→dequeue times of sampled packets, in nanoseconds, merged
	// across shards. Quantiles are bucket upper bounds (25µs buckets
	// spanning ~205ms — see residence.go); samples beyond the span report
	// the exact observed maximum.
	ResidenceSamples uint64
	ResidenceP50Ns   float64
	ResidenceP99Ns   float64
	ResidenceMaxNs   float64
}

// ShardStat is the per-shard slice of Stats, for load-balance inspection.
// Segment memory is shared (there is no per-shard pool), so the occupancy
// columns report what this shard's queues hold of the common pool.
type ShardStat struct {
	Shard            int
	EnqueuedPackets  uint64
	DequeuedPackets  uint64
	Rejected         uint64
	DroppedPackets   uint64
	PushedOutPackets uint64
	QueuedSegments   int // segments this shard's queues hold
	BufferedBytes    int64
	ActiveFlows      int
}

// Stats aggregates counters and occupancy across shards. Each shard is
// snapshotted inside its own critical section (the mutex on the sync
// datapath, the worker on the ring datapath); the result is consistent per
// shard but not a global atomic cut (concurrent traffic may move between
// shards' snapshots), which is the standard trade for not stopping the
// world.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards)}
	// One pooled merge target per snapshot: Histogram.Merge reads its
	// argument without mutating it, so each shard's histogram is folded in
	// directly inside that shard's critical section — no per-shard clone,
	// and no 64KB allocation per Stats call for high-frequency samplers.
	var merged *stats.Histogram
	if e.cfg.ResidenceSample > 0 {
		if v := e.histPool.Get(); v != nil {
			merged = v.(*stats.Histogram)
			merged.Reset()
		} else {
			merged = stats.NewHistogram(resHistBuckets, resHistWidthNs)
		}
		defer e.histPool.Put(merged)
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.m.PublishFree() // exact pool occupancy even under deferral
			st.EnqueuedPackets += s.enqPackets
			st.EnqueuedSegments += s.enqSegments
			st.DequeuedPackets += s.deqPackets
			st.DequeuedSegments += s.deqSegments
			st.Rejected += s.rejected
			st.DroppedPackets += s.dropPackets
			st.DroppedSegments += s.dropSegments
			st.PushedOutPackets += s.poPackets
			st.PushedOutSegments += s.poSegments
			st.QueuedSegments += s.m.QueuedSegments()
			st.BufferedBytes += int64(s.m.TotalBuffered())
			st.ActiveFlows += s.activeFlows
			if s.res != nil {
				merged.Merge(s.res.hist)
			}
		})
	}
	for _, p := range e.ports {
		st.TransmittedPackets += p.txPackets.Load()
		st.TransmittedBytes += p.txBytes.Load()
		st.Throttled += p.throttled.Load()
	}
	if merged != nil {
		st.ResidenceSamples = merged.N()
		if st.ResidenceSamples > 0 {
			st.ResidenceP50Ns = merged.Quantile(0.50)
			st.ResidenceP99Ns = merged.Quantile(0.99)
			st.ResidenceMaxNs = merged.Max()
		}
	}
	st.FreeSegments = e.store.Free()
	return st
}

// ShardStats returns one entry per shard, for inspecting hash balance.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		i, s := i, s
		e.run(s, func() {
			out[i] = ShardStat{
				Shard:            i,
				EnqueuedPackets:  s.enqPackets,
				DequeuedPackets:  s.deqPackets,
				Rejected:         s.rejected,
				DroppedPackets:   s.dropPackets,
				PushedOutPackets: s.poPackets,
				QueuedSegments:   s.m.QueuedSegments(),
				BufferedBytes:    int64(s.m.TotalBuffered()),
				ActiveFlows:      s.activeFlows,
			}
		})
	}
	return out
}

// CheckInvariants validates every shard's queue discipline, the active
// bitmaps, the shared store's free structures, and the engine-wide
// conservation laws: free + queued + floating equals the configured pool,
// and every enqueued segment was either dequeued, pushed out by the
// admission policy, or is still resident (enqueued = dequeued + pushed-out
// + resident). Shards are checked one critical section at a time, so it is
// only a consistent global check when the engine is quiescent (drained
// rings included — call Drain first on the ring datapath).
func (e *Engine) CheckInvariants() error {
	var enq, deq, pushed uint64
	queued, floating := 0, 0
	for i, s := range e.shards {
		i, s := i, s
		var err error
		e.run(s, func() {
			s.m.PublishFree()
			err = s.m.CheckInvariants()
			if err == nil {
				err = s.checkActiveLocked(i)
			}
			enq += s.enqSegments
			deq += s.deqSegments
			pushed += s.poSegments
			queued += s.m.QueuedSegments()
			floating += s.m.Floating()
		})
		if err != nil {
			return err
		}
	}
	if err := e.store.CheckInvariants(); err != nil {
		return err
	}
	if free := e.store.Free(); free+queued+floating != e.cfg.NumSegments {
		return fmt.Errorf("engine: conservation violated: %d free + %d queued + %d floating != %d",
			free, queued, floating, e.cfg.NumSegments)
	}
	if enq != deq+pushed+uint64(queued) {
		return fmt.Errorf("engine: segment conservation violated: enqueued %d != dequeued %d + pushed-out %d + resident %d",
			enq, deq, pushed, queued)
	}
	return nil
}

// checkActiveLocked validates the shard's per-port active bitmaps against
// the queue table, inside the shard's critical section: a non-empty flow
// must be marked active on its own port's scheduling unit, and — via the
// popcount cross-check — on no other (every owning bit being correct
// plus per-port popcounts matching their counters leaves no room for
// stray bits on foreign ports). O(flows + ports·words), so wide port
// spaces stay checkable.
func (s *shard) checkActiveLocked(shardIdx int) error {
	count := 0
	for q := 0; q < s.m.NumQueues(); q++ {
		n, err := s.m.Len(queue.QueueID(q))
		if err != nil {
			return err
		}
		if bit := s.isActive(uint32(q)); bit != (n > 0) {
			return fmt.Errorf("engine: shard %d flow %d has %d segments but port %d active bit is %v",
				shardIdx, q, n, s.portOf(uint32(q)), bit)
		}
		if n > 0 {
			count++
		}
	}
	if count != s.activeFlows {
		return fmt.Errorf("engine: shard %d bitmaps hold %d flows, counter says %d", shardIdx, count, s.activeFlows)
	}
	perPort := 0
	for p := range s.ps {
		ps := &s.ps[p]
		perPort += ps.activeFlows
		popcount := 0
		for _, word := range ps.active {
			popcount += bits.OnesCount64(word)
		}
		if popcount != ps.activeFlows {
			return fmt.Errorf("engine: shard %d port %d bitmap holds %d flows, counter says %d", shardIdx, p, popcount, ps.activeFlows)
		}
		for w := 0; w < ps.lowWord && w < len(ps.active); w++ {
			if ps.active[w] != 0 {
				return fmt.Errorf("engine: shard %d port %d has active bits below lowWord %d", shardIdx, p, ps.lowWord)
			}
		}
	}
	if perPort != s.activeFlows {
		return fmt.Errorf("engine: shard %d per-port counters sum to %d, total says %d", shardIdx, perPort, s.activeFlows)
	}
	return nil
}
