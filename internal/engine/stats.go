package engine

import (
	"fmt"

	"npqm/internal/queue"
	"npqm/internal/sched"
	"npqm/internal/stats"
)

// Stats is an aggregate snapshot of engine activity and occupancy across
// all shards. Counters are cumulative since New.
type Stats struct {
	Shards int

	// Traffic counters.
	EnqueuedPackets  uint64
	EnqueuedSegments uint64
	DequeuedPackets  uint64
	DequeuedSegments uint64
	Rejected         uint64 // enqueues refused (pool exhausted or flow capped)

	// Policy counters. Dropped arrivals were refused by the admission
	// policy and never buffered; pushed-out packets were buffered and then
	// evicted (LQD push-out), so conservation reads
	// EnqueuedSegments = DequeuedSegments + PushedOutSegments + QueuedSegments.
	DroppedPackets    uint64
	DroppedSegments   uint64
	PushedOutPackets  uint64
	PushedOutSegments uint64

	// Transmit side (ports served through Serve). Packets delivered by
	// port workers are also counted in DequeuedPackets/Segments — the
	// transmit counters slice that total by delivery path and add the
	// pacing signal. See PortStats for the per-port breakdown.
	TransmittedPackets uint64
	TransmittedBytes   uint64
	Throttled          uint64 // pacer parks waiting for shaper tokens

	// CopiedBytes counts payload bytes that crossed a copying datapath:
	// buffer-based enqueues copy in, buffer-based dequeues copy out, and
	// each charges the bytes it copied. The zero-copy paths — view
	// delivery and write-in-place ingest — never add to it, so a
	// deployment that has fully converted sees this counter stand still
	// while traffic flows. Always zero when data storage is off.
	CopiedBytes uint64

	// CoalescedWakes counts wakeups merged away instead of delivered: ring
	// completion decrements folded into one per-drain flush (see
	// execBatch) plus pacer notifies absorbed by an already-pending wake.
	// High values mean the signaling fabric is doing its job — producers
	// and pacers are being spared cross-core channel operations.
	CoalescedWakes uint64

	// Occupancy.
	FreeSegments   int   // shared-pool free population (depot + caches)
	QueuedSegments int   // segments currently linked into flow queues
	LentSegments   int   // segments checked out in views and open reservations
	BufferedBytes  int64 // payload bytes across all queued segments
	ActiveFlows    int   // flows with at least one queued segment

	// Residence-time sampling (zero unless Config.ResidenceSample > 0):
	// enqueue→dequeue times of sampled packets, in nanoseconds, merged
	// across shards. Quantiles are bucket upper bounds (25µs buckets
	// spanning ~205ms — see residence.go); samples beyond the span report
	// the exact observed maximum.
	ResidenceSamples uint64
	ResidenceP50Ns   float64
	ResidenceP99Ns   float64
	ResidenceMaxNs   float64
}

// ShardStat is the per-shard slice of Stats, for load-balance inspection.
// Segment memory is shared (there is no per-shard pool), so the occupancy
// columns report what this shard's queues hold of the common pool.
type ShardStat struct {
	Shard            int
	EnqueuedPackets  uint64
	DequeuedPackets  uint64
	Rejected         uint64
	DroppedPackets   uint64
	PushedOutPackets uint64
	QueuedSegments   int // segments this shard's queues hold
	BufferedBytes    int64
	ActiveFlows      int

	// Ring-datapath worker accounting (zero on the synchronous datapath).
	// Busy and idle nanoseconds are the shard's *worker's* time — in
	// work-stealing mode busy includes batches it executed from siblings'
	// rings, while StolenCommands counts what siblings took from this
	// shard's ring. max(WorkerBusyNs) / sum(WorkerBusyNs) is the busy
	// share a skewed load concentrates on one worker; stealing exists to
	// push that toward 1/shards.
	WorkerBusyNs   int64
	WorkerIdleNs   int64
	StealBatches   uint64 // batches this worker executed from sibling rings
	StolenCommands uint64 // commands siblings executed from this shard's ring
	CoalescedWakes uint64 // completion decrements merged per-drain on this shard
}

// Stats aggregates counters and occupancy across shards. Each shard is
// snapshotted inside its own critical section (the mutex on the sync
// datapath, the worker on the ring datapath); the result is consistent per
// shard but not a global atomic cut (concurrent traffic may move between
// shards' snapshots), which is the standard trade for not stopping the
// world.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards)}
	// One pooled merge target per snapshot: Histogram.Merge reads its
	// argument without mutating it, so each shard's histogram is folded in
	// directly inside that shard's critical section — no per-shard clone,
	// and no 64KB allocation per Stats call for high-frequency samplers.
	var merged *stats.Histogram
	if e.cfg.ResidenceSample > 0 {
		if v := e.histPool.Get(); v != nil {
			merged = v.(*stats.Histogram)
			merged.Reset()
		} else {
			merged = stats.NewHistogram(resHistBuckets, resHistWidthNs)
		}
		defer e.histPool.Put(merged)
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.m.PublishFree() // exact pool occupancy even under deferral
			st.EnqueuedPackets += s.enqPackets
			st.EnqueuedSegments += s.enqSegments
			st.DequeuedPackets += s.deqPackets
			st.DequeuedSegments += s.deqSegments
			st.Rejected += s.rejected
			st.CopiedBytes += s.copiedBytes
			st.DroppedPackets += s.dropPackets
			st.DroppedSegments += s.dropSegments
			st.PushedOutPackets += s.poPackets
			st.PushedOutSegments += s.poSegments
			st.QueuedSegments += s.m.QueuedSegments()
			st.BufferedBytes += int64(s.m.TotalBuffered())
			st.ActiveFlows += s.activeFlows
			if s.res != nil {
				merged.Merge(s.res.hist)
			}
		})
	}
	for _, p := range e.ports {
		st.TransmittedPackets += p.txPackets.Load()
		st.TransmittedBytes += p.txBytes.Load()
		st.Throttled += p.throttled.Load()
	}
	for _, s := range e.shards {
		st.CoalescedWakes += s.coalescedWakes.Load()
	}
	for _, pc := range e.pacers {
		st.CoalescedWakes += pc.coalesced.Load()
	}
	if merged != nil {
		st.ResidenceSamples = merged.N()
		if st.ResidenceSamples > 0 {
			st.ResidenceP50Ns = merged.Quantile(0.50)
			st.ResidenceP99Ns = merged.Quantile(0.99)
			st.ResidenceMaxNs = merged.Max()
		}
	}
	st.FreeSegments = e.store.Free()
	st.LentSegments = e.store.Lent()
	return st
}

// ShardStats returns one entry per shard, for inspecting hash balance.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		i, s := i, s
		e.run(s, func() {
			out[i] = ShardStat{
				Shard:            i,
				EnqueuedPackets:  s.enqPackets,
				DequeuedPackets:  s.deqPackets,
				Rejected:         s.rejected,
				DroppedPackets:   s.dropPackets,
				PushedOutPackets: s.poPackets,
				QueuedSegments:   s.m.QueuedSegments(),
				BufferedBytes:    int64(s.m.TotalBuffered()),
				ActiveFlows:      s.activeFlows,
			}
		})
		// Worker accounting is atomic — snapshot outside the critical
		// section (reading it from inside a worker-executed closure would
		// self-deadlock on busy time anyway).
		out[i].WorkerBusyNs = s.wBusyNs.Load()
		out[i].WorkerIdleNs = s.wIdleNs.Load()
		out[i].StealBatches = s.wStealBatches.Load()
		out[i].StolenCommands = s.wStolenCmds.Load()
		out[i].CoalescedWakes = s.coalescedWakes.Load()
	}
	return out
}

// ClassStat is one scheduling class's slice of the egress statistics.
type ClassStat struct {
	Class       int
	ActiveFlows int // flows with backlog currently mapped to this class
	Weight      int // class-level WRR/DRR weight
}

// TenantStat is one scheduling tenant's slice of the egress statistics.
type TenantStat struct {
	Tenant      int
	ActiveFlows int // flows with backlog currently mapped to this tenant
	Weight      int // tenant-level WRR/DRR weight
}

// accumTierFlows adds one shard's backlogged-flow counts per unit of
// tier into counts, inside the shard's critical section. When the tier
// is flat (no level of its own) every backlogged flow sits in unit 0.
func accumTierFlows(s *shard, tier int, counts []int) {
	li := -1
	for k := range s.eg.levels {
		if int(s.eg.levels[k].tier) == tier {
			li = k
		}
	}
	if li < 0 {
		for p := range s.ps {
			counts[0] += s.ps[p].activeFlows
		}
		return
	}
	// Flows hang off the innermost level's nodes; a node's unit in the
	// queried tier is recovered from its composite index by stripping
	// the inner tiers' strides.
	stride := int32(1)
	for k := li + 1; k < len(s.eg.levels); k++ {
		stride *= s.eg.levels[k].mod
	}
	mod := s.eg.levels[li].mod
	for p := range s.ps {
		ps := &s.ps[p]
		if !ps.st.Ready() || ps.activeFlows == 0 {
			continue
		}
		last := ps.st.Depth() - 1
		for idx := 0; idx < ps.st.Width(last); idx++ {
			if n := ps.st.Child(last, int32(idx)).Count(); n > 0 {
				counts[(int32(idx)/stride)%mod] += n
			}
		}
	}
}

// tierStats collects per-unit backlog and weights for one tier.
func (e *Engine) tierStats(tier int) ([]int, []int) {
	units := int(e.tierUnits[tier])
	counts := make([]int, units)
	weights := make([]int, units)
	for u := range weights {
		weights[u] = 1
	}
	for si, s := range e.shards {
		si, s := si, s
		e.run(s, func() {
			if si == 0 {
				for u := range weights {
					if w := s.eg.tierWeights[tier][u]; w > 0 {
						weights[u] = int(w)
					}
				}
			}
			accumTierFlows(s, tier, counts)
		})
	}
	return counts, weights
}

// ClassStats returns one entry per scheduling class: how many backlogged
// flows the class holds right now (summed across shards and ports;
// consistent per shard, not a global cut) and its configured weight.
func (e *Engine) ClassStats() []ClassStat {
	counts, weights := e.tierStats(tierClass)
	out := make([]ClassStat, len(counts))
	for c := range out {
		out[c] = ClassStat{Class: c, ActiveFlows: counts[c], Weight: weights[c]}
	}
	return out
}

// TenantStats returns one entry per scheduling tenant: how many
// backlogged flows the tenant holds right now (summed across shards and
// ports; consistent per shard, not a global cut) and its configured
// weight.
func (e *Engine) TenantStats() []TenantStat {
	counts, weights := e.tierStats(tierTenant)
	out := make([]TenantStat, len(counts))
	for t := range out {
		out[t] = TenantStat{Tenant: t, ActiveFlows: counts[t], Weight: weights[t]}
	}
	return out
}

// CheckInvariants validates every shard's queue discipline, the
// two-level active lists, the shared store's free structures, and the engine-wide
// conservation laws: free + queued + floating + lent equals the configured
// pool (lent counts segments checked out in packet views and open
// write-in-place reservations), and every enqueued segment was either
// dequeued, pushed out by the admission policy, or is still resident
// (enqueued = dequeued + pushed-out + resident; a view's segments count as
// dequeued from the moment the view is produced, and a reservation's count
// as enqueued only at Commit). Shards are checked one critical section at
// a time, so it is only a consistent global check when the engine is
// quiescent (drained rings included — call Drain first on the ring
// datapath; views released on other goroutines included — their release
// must happen-before the check).
func (e *Engine) CheckInvariants() error {
	var enq, deq, pushed uint64
	queued, floating := 0, 0
	for i, s := range e.shards {
		i, s := i, s
		var err error
		e.run(s, func() {
			s.m.PublishFree()
			err = s.m.CheckInvariants()
			if err == nil {
				err = e.checkActiveLocked(s, i)
			}
			enq += s.enqSegments
			deq += s.deqSegments
			pushed += s.poSegments
			queued += s.m.QueuedSegments()
			floating += s.m.Floating()
		})
		if err != nil {
			return err
		}
	}
	if err := e.store.CheckInvariants(); err != nil {
		return err
	}
	lent := e.store.Lent()
	if free := e.store.Free(); free+queued+floating+lent != e.cfg.NumSegments {
		return fmt.Errorf("engine: conservation violated: %d free + %d queued + %d floating + %d lent != %d",
			free, queued, floating, lent, e.cfg.NumSegments)
	}
	if enq != deq+pushed+uint64(queued) {
		return fmt.Errorf("engine: segment conservation violated: enqueued %d != dequeued %d + pushed-out %d + resident %d",
			enq, deq, pushed, queued)
	}
	return nil
}

// checkActiveLocked validates the shard's level-stack active lists
// against the queue table, inside the shard's critical section: a flow
// owned by this shard is linked into exactly one scheduling unit's
// innermost rotation iff it has backlog, every linked node holds
// backlogged descendants, every rotation at every level is a
// well-formed circular ring (walking Count steps closes the cycle with
// prev mirroring next), nodes sit only under their own parent, and
// every per-port counter matches what its lists actually hold — which
// together leave no room for a flow linked under a foreign port, tenant
// or class.
func (e *Engine) checkActiveLocked(s *shard, shardIdx int) error {
	count := 0
	for q := 0; q < s.m.NumQueues(); q++ {
		if e.ShardOf(uint32(q)) != shardIdx {
			// The flow table is engine-wide: this entry belongs to another
			// shard's critical section and queue manager.
			continue
		}
		n, err := s.m.Len(queue.QueueID(q))
		if err != nil {
			return err
		}
		if linked := s.isActive(uint32(q)); linked != (n > 0) {
			return fmt.Errorf("engine: shard %d flow %d has %d segments but list membership is %v",
				shardIdx, q, n, linked)
		}
		if n > 0 {
			count++
		}
	}
	if count != s.activeFlows {
		return fmt.Errorf("engine: shard %d lists hold %d flows, counter says %d", shardIdx, count, s.activeFlows)
	}
	perPort := 0
	for p := range s.ps {
		ps := &s.ps[p]
		perPort += ps.activeFlows
		if !ps.st.Ready() {
			if ps.activeFlows != 0 {
				return fmt.Errorf("engine: shard %d port %d counts %d flows with no scheduler state",
					shardIdx, p, ps.activeFlows)
			}
			continue
		}
		flows, err := e.checkStackLocked(s, shardIdx, p, ps)
		if err != nil {
			return err
		}
		if flows != ps.activeFlows {
			return fmt.Errorf("engine: shard %d port %d lists hold %d flows, counter says %d",
				shardIdx, p, flows, ps.activeFlows)
		}
		// Every node, walked or not: linked into its parent's rotation
		// iff its own child rotation holds members.
		for k := 0; k < ps.st.Depth(); k++ {
			for idx := 0; idx < ps.st.Width(k); idx++ {
				on := ps.st.NodeLinked(k, int32(idx))
				if on != (ps.st.Child(k, int32(idx)).Count() > 0) {
					return fmt.Errorf("engine: shard %d port %d level %d node %d linked=%v but holds %d members",
						shardIdx, p, k, idx, on, ps.st.Child(k, int32(idx)).Count())
				}
			}
		}
	}
	if perPort != s.activeFlows {
		return fmt.Errorf("engine: shard %d per-port counters sum to %d, total says %d", shardIdx, perPort, s.activeFlows)
	}
	return nil
}

// checkStackLocked walks one scheduling unit's hierarchy from the root,
// verifying every rotation ring it can reach and returning the number
// of flows linked under the unit. level n (the stack depth) is the flow
// level; parent is the composite index of the node whose child ring is
// being walked (unused at the root).
func (e *Engine) checkStackLocked(s *shard, shardIdx, p int, ps *portSched) (int, error) {
	n := ps.st.Depth()
	var walk func(level int, l *sched.Level, parent int32) (int, error)
	walk = func(level int, l *sched.Level, parent int32) (int, error) {
		cnt := l.Count()
		if cnt == 0 {
			return 0, nil
		}
		var ent sched.Entity
		if level < n {
			ent = ps.st.Ent(level)
		} else {
			ent = s
		}
		total := 0
		id := l.Cursor()
		for i := 0; i < cnt; i++ {
			if level < n {
				if level > 0 && id/s.eg.levels[level].mod != parent {
					return 0, fmt.Errorf("engine: shard %d port %d level %d node %d sits under parent %d, composite index says %d",
						shardIdx, p, level, id, parent, id/s.eg.levels[level].mod)
				}
				sub, err := walk(level+1, ps.st.Child(level, id), id)
				if err != nil {
					return 0, err
				}
				if sub == 0 {
					return 0, fmt.Errorf("engine: shard %d port %d level %d node %d is linked but holds no flows",
						shardIdx, p, level, id)
				}
				total += sub
			} else {
				fs := &s.flows[id]
				if int(fs.port) != p {
					return 0, fmt.Errorf("engine: shard %d flow %d sits on port %d's list but maps to port %d",
						shardIdx, id, p, fs.port)
				}
				if n > 0 {
					var pb [numTiers]int32
					if path := s.pathOf(uint32(id), pb[:0]); path[n-1] != parent {
						return 0, fmt.Errorf("engine: shard %d flow %d sits under node %d but maps to tenant %d class %d (node %d)",
							shardIdx, id, parent, fs.tenant, fs.class, path[n-1])
					}
				}
				total++
			}
			next := ent.Next(id)
			if next == sched.None || ent.Prev(next) != id {
				return 0, fmt.Errorf("engine: shard %d port %d level %d ring broken at %d", shardIdx, p, level, id)
			}
			id = next
		}
		if id != l.Cursor() {
			return 0, fmt.Errorf("engine: shard %d port %d level %d ring does not close in %d steps",
				shardIdx, p, level, cnt)
		}
		return total, nil
	}
	return walk(0, ps.st.Root(), sched.None)
}
