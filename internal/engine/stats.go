package engine

import "fmt"

// Stats is an aggregate snapshot of engine activity and occupancy across
// all shards. Counters are cumulative since New.
type Stats struct {
	Shards int

	// Traffic counters.
	EnqueuedPackets  uint64
	EnqueuedSegments uint64
	DequeuedPackets  uint64
	DequeuedSegments uint64
	Rejected         uint64 // enqueues refused (pool exhausted or flow capped)

	// Occupancy.
	FreeSegments   int   // aggregate free-list population
	QueuedSegments int   // segments currently linked into flow queues
	BufferedBytes  int64 // payload bytes across all queued segments
}

// ShardStat is the per-shard slice of Stats, for load-balance inspection.
type ShardStat struct {
	Shard           int
	EnqueuedPackets uint64
	DequeuedPackets uint64
	Rejected        uint64
	FreeSegments    int
	QueuedSegments  int
	BufferedBytes   int64
	PoolSegments    int // this shard's share of the segment pool
}

// Stats aggregates counters and occupancy across shards. Each shard is
// snapshotted under its own lock; the result is consistent per shard but
// not a global atomic cut (concurrent traffic may move between shards'
// snapshots), which is the standard trade for not stopping the world.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards)}
	for _, s := range e.shards {
		s.mu.Lock()
		st.EnqueuedPackets += s.enqPackets
		st.EnqueuedSegments += s.enqSegments
		st.DequeuedPackets += s.deqPackets
		st.DequeuedSegments += s.deqSegments
		st.Rejected += s.rejected
		free := s.m.FreeSegments()
		st.FreeSegments += free
		st.QueuedSegments += s.m.NumSegments() - free
		st.BufferedBytes += int64(s.m.TotalBuffered())
		s.mu.Unlock()
	}
	return st
}

// ShardStats returns one entry per shard, for inspecting hash balance.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		free := s.m.FreeSegments()
		out[i] = ShardStat{
			Shard:           i,
			EnqueuedPackets: s.enqPackets,
			DequeuedPackets: s.deqPackets,
			Rejected:        s.rejected,
			FreeSegments:    free,
			QueuedSegments:  s.m.NumSegments() - free,
			BufferedBytes:   int64(s.m.TotalBuffered()),
			PoolSegments:    s.m.NumSegments(),
		}
		s.mu.Unlock()
	}
	return out
}

// CheckInvariants validates every shard's pointer discipline and the
// engine-wide segment conservation law (free + queued across shards equals
// the configured pool). It takes all shard locks one at a time, so it is
// only a consistent global check when the engine is quiescent.
func (e *Engine) CheckInvariants() error {
	totalSegs := 0
	for _, s := range e.shards {
		s.mu.Lock()
		err := s.m.CheckInvariants()
		totalSegs += s.m.NumSegments()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if totalSegs != e.cfg.NumSegments {
		return fmt.Errorf("engine: shard pools hold %d segments, config says %d", totalSegs, e.cfg.NumSegments)
	}
	return nil
}
