package engine

import (
	"fmt"

	"npqm/internal/queue"
	"npqm/internal/sched"
	"npqm/internal/stats"
)

// Stats is an aggregate snapshot of engine activity and occupancy across
// all shards. Counters are cumulative since New.
type Stats struct {
	Shards int

	// Traffic counters.
	EnqueuedPackets  uint64
	EnqueuedSegments uint64
	DequeuedPackets  uint64
	DequeuedSegments uint64
	Rejected         uint64 // enqueues refused (pool exhausted or flow capped)

	// Policy counters. Dropped arrivals were refused by the admission
	// policy and never buffered; pushed-out packets were buffered and then
	// evicted (LQD push-out), so conservation reads
	// EnqueuedSegments = DequeuedSegments + PushedOutSegments + QueuedSegments.
	DroppedPackets    uint64
	DroppedSegments   uint64
	PushedOutPackets  uint64
	PushedOutSegments uint64

	// Transmit side (ports served through Serve). Packets delivered by
	// port workers are also counted in DequeuedPackets/Segments — the
	// transmit counters slice that total by delivery path and add the
	// pacing signal. See PortStats for the per-port breakdown.
	TransmittedPackets uint64
	TransmittedBytes   uint64
	Throttled          uint64 // pacer parks waiting for shaper tokens

	// CopiedBytes counts payload bytes that crossed a copying datapath:
	// buffer-based enqueues copy in, buffer-based dequeues copy out, and
	// each charges the bytes it copied. The zero-copy paths — view
	// delivery and write-in-place ingest — never add to it, so a
	// deployment that has fully converted sees this counter stand still
	// while traffic flows. Always zero when data storage is off.
	CopiedBytes uint64

	// CoalescedWakes counts wakeups merged away instead of delivered: ring
	// completion decrements folded into one per-drain flush (see
	// execBatch) plus pacer notifies absorbed by an already-pending wake.
	// High values mean the signaling fabric is doing its job — producers
	// and pacers are being spared cross-core channel operations.
	CoalescedWakes uint64

	// Occupancy.
	FreeSegments   int   // shared-pool free population (depot + caches)
	QueuedSegments int   // segments currently linked into flow queues
	LentSegments   int   // segments checked out in views and open reservations
	BufferedBytes  int64 // payload bytes across all queued segments
	ActiveFlows    int   // flows with at least one queued segment

	// Residence-time sampling (zero unless Config.ResidenceSample > 0):
	// enqueue→dequeue times of sampled packets, in nanoseconds, merged
	// across shards. Quantiles are bucket upper bounds (25µs buckets
	// spanning ~205ms — see residence.go); samples beyond the span report
	// the exact observed maximum.
	ResidenceSamples uint64
	ResidenceP50Ns   float64
	ResidenceP99Ns   float64
	ResidenceMaxNs   float64
}

// ShardStat is the per-shard slice of Stats, for load-balance inspection.
// Segment memory is shared (there is no per-shard pool), so the occupancy
// columns report what this shard's queues hold of the common pool.
type ShardStat struct {
	Shard            int
	EnqueuedPackets  uint64
	DequeuedPackets  uint64
	Rejected         uint64
	DroppedPackets   uint64
	PushedOutPackets uint64
	QueuedSegments   int // segments this shard's queues hold
	BufferedBytes    int64
	ActiveFlows      int

	// Ring-datapath worker accounting (zero on the synchronous datapath).
	// Busy and idle nanoseconds are the shard's *worker's* time — in
	// work-stealing mode busy includes batches it executed from siblings'
	// rings, while StolenCommands counts what siblings took from this
	// shard's ring. max(WorkerBusyNs) / sum(WorkerBusyNs) is the busy
	// share a skewed load concentrates on one worker; stealing exists to
	// push that toward 1/shards.
	WorkerBusyNs   int64
	WorkerIdleNs   int64
	StealBatches   uint64 // batches this worker executed from sibling rings
	StolenCommands uint64 // commands siblings executed from this shard's ring
	CoalescedWakes uint64 // completion decrements merged per-drain on this shard
}

// Stats aggregates counters and occupancy across shards. Each shard is
// snapshotted inside its own critical section (the mutex on the sync
// datapath, the worker on the ring datapath); the result is consistent per
// shard but not a global atomic cut (concurrent traffic may move between
// shards' snapshots), which is the standard trade for not stopping the
// world.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards)}
	// One pooled merge target per snapshot: Histogram.Merge reads its
	// argument without mutating it, so each shard's histogram is folded in
	// directly inside that shard's critical section — no per-shard clone,
	// and no 64KB allocation per Stats call for high-frequency samplers.
	var merged *stats.Histogram
	if e.cfg.ResidenceSample > 0 {
		if v := e.histPool.Get(); v != nil {
			merged = v.(*stats.Histogram)
			merged.Reset()
		} else {
			merged = stats.NewHistogram(resHistBuckets, resHistWidthNs)
		}
		defer e.histPool.Put(merged)
	}
	for _, s := range e.shards {
		s := s
		e.run(s, func() {
			s.m.PublishFree() // exact pool occupancy even under deferral
			st.EnqueuedPackets += s.enqPackets
			st.EnqueuedSegments += s.enqSegments
			st.DequeuedPackets += s.deqPackets
			st.DequeuedSegments += s.deqSegments
			st.Rejected += s.rejected
			st.CopiedBytes += s.copiedBytes
			st.DroppedPackets += s.dropPackets
			st.DroppedSegments += s.dropSegments
			st.PushedOutPackets += s.poPackets
			st.PushedOutSegments += s.poSegments
			st.QueuedSegments += s.m.QueuedSegments()
			st.BufferedBytes += int64(s.m.TotalBuffered())
			st.ActiveFlows += s.activeFlows
			if s.res != nil {
				merged.Merge(s.res.hist)
			}
		})
	}
	for _, p := range e.ports {
		st.TransmittedPackets += p.txPackets.Load()
		st.TransmittedBytes += p.txBytes.Load()
		st.Throttled += p.throttled.Load()
	}
	for _, s := range e.shards {
		st.CoalescedWakes += s.coalescedWakes.Load()
	}
	for _, pc := range e.pacers {
		st.CoalescedWakes += pc.coalesced.Load()
	}
	if merged != nil {
		st.ResidenceSamples = merged.N()
		if st.ResidenceSamples > 0 {
			st.ResidenceP50Ns = merged.Quantile(0.50)
			st.ResidenceP99Ns = merged.Quantile(0.99)
			st.ResidenceMaxNs = merged.Max()
		}
	}
	st.FreeSegments = e.store.Free()
	st.LentSegments = e.store.Lent()
	return st
}

// ShardStats returns one entry per shard, for inspecting hash balance.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		i, s := i, s
		e.run(s, func() {
			out[i] = ShardStat{
				Shard:            i,
				EnqueuedPackets:  s.enqPackets,
				DequeuedPackets:  s.deqPackets,
				Rejected:         s.rejected,
				DroppedPackets:   s.dropPackets,
				PushedOutPackets: s.poPackets,
				QueuedSegments:   s.m.QueuedSegments(),
				BufferedBytes:    int64(s.m.TotalBuffered()),
				ActiveFlows:      s.activeFlows,
			}
		})
		// Worker accounting is atomic — snapshot outside the critical
		// section (reading it from inside a worker-executed closure would
		// self-deadlock on busy time anyway).
		out[i].WorkerBusyNs = s.wBusyNs.Load()
		out[i].WorkerIdleNs = s.wIdleNs.Load()
		out[i].StealBatches = s.wStealBatches.Load()
		out[i].StolenCommands = s.wStolenCmds.Load()
		out[i].CoalescedWakes = s.coalescedWakes.Load()
	}
	return out
}

// ClassStat is one scheduling class's slice of the egress statistics.
type ClassStat struct {
	Class       int
	ActiveFlows int // flows with backlog currently mapped to this class
	Weight      int // class-level WRR/DRR weight
}

// ClassStats returns one entry per scheduling class: how many backlogged
// flows the class holds right now (summed across shards and ports;
// consistent per shard, not a global cut) and its configured weight.
func (e *Engine) ClassStats() []ClassStat {
	out := make([]ClassStat, e.numClasses)
	for c := range out {
		out[c] = ClassStat{Class: c, Weight: 1}
	}
	for si, s := range e.shards {
		si, s := si, s
		e.run(s, func() {
			if si == 0 {
				for c := range out {
					if w := s.eg.classWeights[c]; w > 0 {
						out[c].Weight = int(w)
					}
				}
			}
			for p := range s.ps {
				for c := range s.ps[p].classes {
					out[c].ActiveFlows += s.ps[p].classes[c].fl.Count()
				}
			}
		})
	}
	return out
}

// CheckInvariants validates every shard's queue discipline, the
// two-level active lists, the shared store's free structures, and the engine-wide
// conservation laws: free + queued + floating + lent equals the configured
// pool (lent counts segments checked out in packet views and open
// write-in-place reservations), and every enqueued segment was either
// dequeued, pushed out by the admission policy, or is still resident
// (enqueued = dequeued + pushed-out + resident; a view's segments count as
// dequeued from the moment the view is produced, and a reservation's count
// as enqueued only at Commit). Shards are checked one critical section at
// a time, so it is only a consistent global check when the engine is
// quiescent (drained rings included — call Drain first on the ring
// datapath; views released on other goroutines included — their release
// must happen-before the check).
func (e *Engine) CheckInvariants() error {
	var enq, deq, pushed uint64
	queued, floating := 0, 0
	for i, s := range e.shards {
		i, s := i, s
		var err error
		e.run(s, func() {
			s.m.PublishFree()
			err = s.m.CheckInvariants()
			if err == nil {
				err = e.checkActiveLocked(s, i)
			}
			enq += s.enqSegments
			deq += s.deqSegments
			pushed += s.poSegments
			queued += s.m.QueuedSegments()
			floating += s.m.Floating()
		})
		if err != nil {
			return err
		}
	}
	if err := e.store.CheckInvariants(); err != nil {
		return err
	}
	lent := e.store.Lent()
	if free := e.store.Free(); free+queued+floating+lent != e.cfg.NumSegments {
		return fmt.Errorf("engine: conservation violated: %d free + %d queued + %d floating + %d lent != %d",
			free, queued, floating, lent, e.cfg.NumSegments)
	}
	if enq != deq+pushed+uint64(queued) {
		return fmt.Errorf("engine: segment conservation violated: enqueued %d != dequeued %d + pushed-out %d + resident %d",
			enq, deq, pushed, queued)
	}
	return nil
}

// checkActiveLocked validates the shard's two-level active lists against
// the queue table, inside the shard's critical section: a flow owned by
// this shard is linked into exactly one (port, class) rotation iff it
// has backlog, every linked class holds flows, both list levels are
// well-formed circular rings (walking Count steps closes the cycle with
// prev mirroring next), and every per-port and per-class counter matches
// what its list actually holds — which together leave no room for a flow
// linked under a foreign port or class.
func (e *Engine) checkActiveLocked(s *shard, shardIdx int) error {
	count := 0
	for q := 0; q < s.m.NumQueues(); q++ {
		if e.ShardOf(uint32(q)) != shardIdx {
			// The flow table is engine-wide: this entry belongs to another
			// shard's critical section and queue manager.
			continue
		}
		n, err := s.m.Len(queue.QueueID(q))
		if err != nil {
			return err
		}
		if linked := s.isActive(uint32(q)); linked != (n > 0) {
			return fmt.Errorf("engine: shard %d flow %d has %d segments but list membership is %v",
				shardIdx, q, n, linked)
		}
		if n > 0 {
			count++
		}
	}
	if count != s.activeFlows {
		return fmt.Errorf("engine: shard %d lists hold %d flows, counter says %d", shardIdx, count, s.activeFlows)
	}
	perPort := 0
	for p := range s.ps {
		ps := &s.ps[p]
		perPort += ps.activeFlows
		if ps.classes == nil {
			if ps.activeFlows != 0 || ps.cls.Count() != 0 {
				return fmt.Errorf("engine: shard %d port %d counts %d flows, %d classes with no class state",
					shardIdx, p, ps.activeFlows, ps.cls.Count())
			}
			continue
		}
		if cn := ps.cls.Count(); cn > 0 {
			id := ps.cls.Cursor()
			for i := 0; i < cn; i++ {
				next := ps.Next(id)
				if next == sched.None || ps.Prev(next) != id {
					return fmt.Errorf("engine: shard %d port %d class ring broken at class %d", shardIdx, p, id)
				}
				id = next
			}
			if id != ps.cls.Cursor() {
				return fmt.Errorf("engine: shard %d port %d class ring does not close in %d steps", shardIdx, p, cn)
			}
		}
		flows, linked := 0, 0
		for c := range ps.classes {
			cu := &ps.classes[c]
			on := cu.cnext != sched.None
			if on != (cu.fl.Count() > 0) {
				return fmt.Errorf("engine: shard %d port %d class %d linked=%v but holds %d flows",
					shardIdx, p, c, on, cu.fl.Count())
			}
			if !on {
				continue
			}
			linked++
			fn := cu.fl.Count()
			id := cu.fl.Cursor()
			for i := 0; i < fn; i++ {
				if fs := &s.flows[id]; int(fs.port) != p || int(fs.class) != c {
					return fmt.Errorf("engine: shard %d flow %d sits on port %d class %d list but maps to port %d class %d",
						shardIdx, id, p, c, fs.port, fs.class)
				}
				next := s.Next(id)
				if next == sched.None || s.Prev(next) != id {
					return fmt.Errorf("engine: shard %d port %d class %d flow ring broken at flow %d", shardIdx, p, c, id)
				}
				flows++
				id = next
			}
			if id != cu.fl.Cursor() {
				return fmt.Errorf("engine: shard %d port %d class %d flow ring does not close in %d steps",
					shardIdx, p, c, fn)
			}
		}
		if linked != ps.cls.Count() {
			return fmt.Errorf("engine: shard %d port %d has %d backlogged classes, rotation says %d",
				shardIdx, p, linked, ps.cls.Count())
		}
		if flows != ps.activeFlows {
			return fmt.Errorf("engine: shard %d port %d lists hold %d flows, counter says %d",
				shardIdx, p, flows, ps.activeFlows)
		}
	}
	if perPort != s.activeFlows {
		return fmt.Errorf("engine: shard %d per-port counters sum to %d, total says %d", shardIdx, perPort, s.activeFlows)
	}
	return nil
}
