package npu

// This file mirrors Figure 1: the block topology of the reference NPU
// prototype on the Virtex-II Pro. The topology is data, so the table/figure
// harness can print it and the examples can wire traffic through the same
// component graph the paper drew.

// Component is one block of the Figure 1 design.
type Component struct {
	Name string
	// Bus names this component attaches to.
	Attach []string
	// Role is a one-line description.
	Role string
}

// Architecture returns the Figure 1 component graph.
func Architecture() []Component {
	return []Component{
		{Name: "PowerPC 405", Attach: []string{"PLB", "OCM"},
			Role: "embedded RISC core running the queue-management software"},
		{Name: "OCM Controller", Attach: []string{"OCM"},
			Role: "connects the CPU to 16KB instruction + 16KB data memories"},
		{Name: "PLB (64-bit, 100 MHz)", Attach: nil,
			Role: "system bus"},
		{Name: "PLB DDR Controller", Attach: []string{"PLB", "DDR"},
			Role: "burst-mode controller for the external packet buffer"},
		{Name: "DDR SDRAM", Attach: []string{"DDR"},
			Role: "external packet buffer (segment-aligned)"},
		{Name: "PLB EMC", Attach: []string{"PLB", "ZBT"},
			Role: "external memory controller for the pointer SRAM"},
		{Name: "ZBT SRAM", Attach: []string{"ZBT"},
			Role: "queue pointers: free list, queue table, next pointers"},
		{Name: "PLB BRAM Controller", Attach: []string{"PLB", "BRAM"},
			Role: "control-side access to the packet staging memory"},
		{Name: "DP-BRAM (4KB)", Attach: []string{"BRAM", "WB"},
			Role: "dual-port staging buffer between MAC and queue manager"},
		{Name: "PLB-WB Bridge", Attach: []string{"PLB", "WB"},
			Role: "control path to the MAC core"},
		{Name: "Ethernet MAC (MII)", Attach: []string{"WB"},
			Role: "network interface (OpenCores MAC, WishBone ports)"},
	}
}

// ScaledTransitMbps applies the Section 5.4 rule of thumb: "the clock
// frequency of the system is proportional to the network bandwidth
// supported". It reports the sustainable throughput across a range of
// projected CPU clocks (the paper discusses 200-300 MHz embedded cores),
// with the caveat that the PLB itself tops out around 200 MHz, capping the
// benefit for bus-bound copy engines.
func ScaledTransitMbps(engine CopyEngine, clockMHz float64) float64 {
	const plbCapMHz = 200
	effective := clockMHz
	// The copy path runs at bus speed; pointer accesses also cross the
	// bus. The model therefore caps the effective clock of bus-bound
	// operations at the PLB limit: a 400 MHz core gains nothing on a
	// 200 MHz bus ("Even if the processor operation frequency is set to
	// 400MHz, the improvement in the overall performance would not be
	// significant").
	if effective > plbCapMHz {
		effective = plbCapMHz
	}
	return TransitMbps(engine, effective)
}
