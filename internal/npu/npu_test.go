package npu

import (
	"math"
	"testing"
)

// TestTable3MatchesPaper verifies every cell of Table 3.
func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	check := func(name string, got, want int) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d cycles, paper says %d", name, got, want)
		}
	}
	check("Dequeue Free List (enqueue op)", rows[0].Enqueue, 34)
	check("Enqueue Free List (dequeue op)", rows[0].Dequeue, 42)
	check("Enqueue Segment first", rows[1].Enqueue, 46)
	check("Enqueue Segment rest", rows[1].EnqueueR, 68)
	check("Dequeue Segment", rows[1].Dequeue, 52)
	check("Copy (enqueue)", rows[2].Enqueue, 136)
	check("Copy (dequeue)", rows[2].Dequeue, 136)
	check("Total enqueue first", rows[3].Enqueue, 216)
	check("Total enqueue rest", rows[3].EnqueueR, 238)
	check("Total dequeue", rows[3].Dequeue, 230)
}

// TestLineTransactionTotals reproduces the Section 5.3 arithmetic. The paper
// states the line-transaction enqueue/dequeue totals as 128 and 118; from
// its own Table 3 rows the sums are 34+68+24 = 126 and 42+52+24 = 118 — the
// dequeue matches exactly and the enqueue has a 2-cycle discrepancy in the
// paper's text, which we flag in EXPERIMENTS.md and bound here.
func TestLineTransactionTotals(t *testing.T) {
	enq := EnqueueCost(false, LineCopy).CPUCycles()
	deq := DequeueCost(LineCopy).CPUCycles()
	if deq != 118 {
		t.Errorf("line-copy dequeue = %d, paper says 118", deq)
	}
	if enq < 126 || enq > 128 {
		t.Errorf("line-copy enqueue = %d, paper's decomposition gives 126 (text says 128)", enq)
	}
}

// TestDMACosts: DMA setup is 16 CPU cycles, the transfer 34 bus cycles, and
// the wall time per operation is approximately the line-transaction time
// ("the total time per operation is approximately the same as before").
func TestDMACosts(t *testing.T) {
	cpu, wall := CopyCost(DMACopy)
	if cpu != 16 {
		t.Fatalf("DMA setup = %d, paper says 16", cpu)
	}
	if wall != 50 {
		t.Fatalf("DMA wall = %d, paper says >= 16+34", wall)
	}
	lineWall := EnqueueCost(true, LineCopy).WallCycles()
	dmaWall := EnqueueCost(true, DMACopy).WallCycles()
	if math.Abs(float64(dmaWall-lineWall)) > 30 {
		t.Fatalf("DMA wall %d vs line wall %d: should be comparable", dmaWall, lineWall)
	}
	// But the CPU is substantially freed.
	if EnqueueCost(true, DMACopy).CPUCycles() >= EnqueueCost(true, WordCopy).CPUCycles() {
		t.Fatal("DMA does not offload the CPU")
	}
}

// TestBaselineSupportsFullDuplex100M: Section 5.3's headline — at 100 MHz
// the word-copy implementation consumes essentially the whole CPU to carry
// a full-duplex 100 Mbps link (one 64-byte packet in + one out per 5.12us,
// costing 446 of the 512 available cycles).
func TestBaselineSupportsFullDuplex100M(t *testing.T) {
	mbps := TransitMbps(WordCopy, ClockMHz)
	if mbps < 100 || mbps > 130 {
		t.Fatalf("baseline transit = %.0f Mbps, paper implies ~100-115", mbps)
	}
	if head := CPUHeadroom(WordCopy, ClockMHz, 100); head > 0.15 {
		t.Fatalf("headroom at 100 Mbps = %.2f; paper says all capacity is used", head)
	}
}

// TestLineCopyReaches200M: "the 100MHz PowerPC would sustain up to about
// 200 Mbps throughput" with line transactions.
func TestLineCopyReaches200M(t *testing.T) {
	mbps := TransitMbps(LineCopy, ClockMHz)
	if mbps < 190 || mbps > 240 {
		t.Fatalf("line-copy transit = %.0f Mbps, paper says about 200", mbps)
	}
}

// TestDMADoesNotRaiseThroughputButFreesCPU: "the overall throughput does not
// increase significantly, but ... the processor has additional available
// processing power".
func TestDMADoesNotRaiseThroughputButFreesCPU(t *testing.T) {
	line := TransitMbps(LineCopy, ClockMHz)
	dma := TransitMbps(DMACopy, ClockMHz)
	if dma < line*0.9 {
		t.Fatalf("DMA transit %.0f far below line %.0f", dma, line)
	}
	// At equal load the DMA configuration leaves more CPU headroom.
	if CPUHeadroom(DMACopy, ClockMHz, 150) <= CPUHeadroom(LineCopy, ClockMHz, 150) {
		t.Fatal("DMA should leave more CPU headroom than line copy")
	}
}

// TestFrequencyRuleOfThumb: Section 5.4 — supported bandwidth scales with
// clock frequency, but a 400 MHz core gains nothing because the PLB caps
// at 200 MHz.
func TestFrequencyRuleOfThumb(t *testing.T) {
	at100 := ScaledTransitMbps(WordCopy, 100)
	at200 := ScaledTransitMbps(WordCopy, 200)
	at400 := ScaledTransitMbps(WordCopy, 400)
	if math.Abs(at200/at100-2) > 0.01 {
		t.Fatalf("200 MHz should double 100 MHz: %v vs %v", at200, at100)
	}
	if at400 != at200 {
		t.Fatalf("400 MHz should be bus-capped at the 200 MHz rate: %v vs %v", at400, at200)
	}
}

// TestSoftwareFarBelowMMS: the paper's central comparison — the software
// approach is an order of magnitude below the hardware MMS's ~6.1 Gbps.
func TestSoftwareFarBelowMMS(t *testing.T) {
	best := ScaledTransitMbps(LineCopy, 300) // generous: fastest core, best copy engine
	if best > 1000 {
		t.Fatalf("software model reaches %.0f Mbps; the paper's point is it stays sub-gigabit", best)
	}
}

func TestSubOpStructure(t *testing.T) {
	for _, op := range []SubOp{DequeueFreeList(), EnqueueFreeList(),
		EnqueueSegment(true), EnqueueSegment(false), DequeueSegment()} {
		if len(op.Steps) == 0 {
			t.Fatalf("%s: empty micro-program", op.Name)
		}
		sum := 0
		for _, st := range op.Steps {
			if st.Cycles <= 0 {
				t.Fatalf("%s: non-positive step %q", op.Name, st.Name)
			}
			sum += st.Cycles
		}
		if sum != op.Cycles() {
			t.Fatalf("%s: Cycles() inconsistent", op.Name)
		}
	}
}

func TestCopyEngineStrings(t *testing.T) {
	for _, e := range CopyEngines() {
		if e.String() == "" {
			t.Fatal("empty engine name")
		}
	}
	if CopyEngine(9).String() != "copy-engine(9)" {
		t.Fatal("unknown engine must render")
	}
}

func TestCopyCostPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CopyCost(CopyEngine(9))
}

func TestTransitMbpsPanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransitMbps(WordCopy, 0)
}

func TestArchitectureMirrorsFigure1(t *testing.T) {
	comps := Architecture()
	if len(comps) < 10 {
		t.Fatalf("only %d components; Figure 1 has 11 blocks", len(comps))
	}
	names := map[string]bool{}
	for _, c := range comps {
		names[c.Name] = true
		if c.Role == "" {
			t.Errorf("%s has no role", c.Name)
		}
	}
	for _, want := range []string{"PowerPC 405", "ZBT SRAM", "DDR SDRAM", "Ethernet MAC (MII)"} {
		if !names[want] {
			t.Errorf("Figure 1 block %q missing", want)
		}
	}
}

func TestCPUHeadroomBounds(t *testing.T) {
	if CPUHeadroom(WordCopy, 100, 1e6) != 0 {
		t.Fatal("overload headroom must be 0")
	}
	h := CPUHeadroom(LineCopy, 100, 0)
	if h != 1 {
		t.Fatalf("zero-load headroom = %v", h)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Table3()
	}
}
