// Package npu models the reference NPU prototype of Section 5 and Figure 1:
// a PowerPC 405 on a 100 MHz, 64-bit PLB inside a Virtex-II Pro, with the
// packet buffer in external DDR DRAM, the queue pointers in external ZBT
// SRAM behind the EMC, and an Ethernet MAC feeding a dual-port BRAM.
//
// The package reproduces Table 3 — the cycle cost of each software queue
// management sub-operation — together with the Section 5.3 optimization
// analysis (PLB line transactions through the data cache, and DMA
// offloading) and the Section 5.4 "clock frequency is proportional to the
// network bandwidth" rule of thumb.
//
// Every sub-operation is an explicit micro-program over the prototype's
// units; pointer accesses go to the ZBT SRAM through the EMC as single PLB
// transactions (4 transfer cycles + 3 bus latency = 7 cycles each), and the
// segment copy moves 64 bytes between the DP-BRAM and the DDR DRAM using
// one of three copy engines.
package npu

import (
	"fmt"

	"npqm/internal/plb"
)

// ClockMHz is the reference prototype's CPU and bus clock.
const ClockMHz = 100

// PacketBits is the worst-case packet the paper sizes against (64 bytes).
const PacketBits = 64 * 8

// SRAMAccessCycles is the cost of one pointer access to the ZBT SRAM via
// the PLB EMC: a single-beat transaction plus the bus latency.
const SRAMAccessCycles = plb.SingleBeatCycles + plb.LatencyCycles // 7

// Step is one priced step of a sub-operation's micro-program.
type Step struct {
	Name   string
	Cycles int
}

// SubOp is a named sequence of steps (one Table 3 row entry).
type SubOp struct {
	Name  string
	Steps []Step
}

// Cycles totals the micro-program.
func (s SubOp) Cycles() int {
	total := 0
	for _, st := range s.Steps {
		total += st.Cycles
	}
	return total
}

func sramStep(name string) Step { return Step{Name: name, Cycles: SRAMAccessCycles} }
func cpuStep(name string, cycles int) Step {
	return Step{Name: name, Cycles: cycles}
}

// DequeueFreeList pops a free segment pointer from the free list:
// 4 pointer accesses + branch/bookkeeping = 34 cycles (Table 3, enqueue
// column).
func DequeueFreeList() SubOp {
	return SubOp{Name: "Dequeue Free List", Steps: []Step{
		sramStep("read free-list head"),
		sramStep("read next[head]"),
		sramStep("write free-list head"),
		sramStep("clear next[segment]"),
		cpuStep("underflow check + bookkeeping", 6),
	}}
}

// EnqueueFreeList returns a segment to the free list: 5 pointer accesses +
// bookkeeping = 42 cycles (Table 3, dequeue column — the paper lists it on
// the "Dequeue Free List" row of the Dequeue operation).
func EnqueueFreeList() SubOp {
	return SubOp{Name: "Enqueue Free List", Steps: []Step{
		sramStep("read free-list tail"),
		sramStep("write next[tail]"),
		sramStep("write free-list tail"),
		sramStep("clear next[segment]"),
		sramStep("write segment state"),
		cpuStep("bookkeeping", 7),
	}}
}

// EnqueueSegment links a filled segment at a queue's tail. The first
// segment of a packet costs 46 cycles; later segments cost 68 because the
// continuation bookkeeping (packet length accumulation in the first
// segment's descriptor and the EOP hand-over) adds pointer traffic
// (Table 3: "46 for the first segment of the packet, 68 for the rest").
func EnqueueSegment(first bool) SubOp {
	steps := []Step{
		sramStep("read queue-table tail"),
		sramStep("write next[old tail]"),
		sramStep("write queue-table tail"),
		sramStep("write segment meta (len,eop)"),
		sramStep("update queue length"),
		cpuStep("head/empty check + bookkeeping", 11),
	}
	if !first {
		steps = append(steps,
			sramStep("read first-segment descriptor"),
			sramStep("accumulate packet length"),
			sramStep("move EOP marker"),
			cpuStep("continuation bookkeeping", 1),
		)
	}
	name := "Enqueue Segment (first)"
	if !first {
		name = "Enqueue Segment (rest)"
	}
	return SubOp{Name: name, Steps: steps}
}

// DequeueSegment unlinks a queue's head segment: 6 pointer accesses +
// bookkeeping = 52 cycles (Table 3, dequeue column "Enqueue Segment" row).
func DequeueSegment() SubOp {
	return SubOp{Name: "Dequeue Segment", Steps: []Step{
		sramStep("read queue-table head"),
		sramStep("read next[head]"),
		sramStep("write queue-table head"),
		sramStep("read segment meta"),
		sramStep("update queue length"),
		sramStep("write tail-if-emptied"),
		cpuStep("empty check + bookkeeping", 10),
	}}
}

// CopyEngine selects the 64-byte segment copy mechanism of Section 5.3.
type CopyEngine int

const (
	// WordCopy is the baseline: the CPU moves the segment word by word
	// over the PLB (136 cycles).
	WordCopy CopyEngine = iota
	// LineCopy uses PLB line transactions through the data cache
	// (2 x 12 = 24 cycles).
	LineCopy
	// DMACopy programs a DMA engine: 16 CPU cycles of setup while the
	// 34-cycle transfer runs on the DMA's clock.
	DMACopy
)

// String implements fmt.Stringer.
func (e CopyEngine) String() string {
	switch e {
	case WordCopy:
		return "word-copy"
	case LineCopy:
		return "line-copy"
	case DMACopy:
		return "dma-copy"
	default:
		return fmt.Sprintf("copy-engine(%d)", int(e))
	}
}

// CopyEngines lists all copy engines.
func CopyEngines() []CopyEngine { return []CopyEngine{WordCopy, LineCopy, DMACopy} }

// CopyCost returns the copy cost of one 64-byte segment: the cycles the CPU
// is busy, and the wall-clock cycles until the data has moved.
func CopyCost(e CopyEngine) (cpu, wall int) {
	switch e {
	case WordCopy:
		c, err := plb.WordCopyCycles(64)
		if err != nil {
			panic(err) // 64 is always valid
		}
		return c, c
	case LineCopy:
		c := plb.LineCopyCycles()
		return c, c
	case DMACopy:
		return plb.DMASetupCycles(), plb.DMASetupCycles() + plb.DMACopyCycles
	default:
		panic(fmt.Sprintf("npu: unknown copy engine %d", int(e)))
	}
}

// OpCost is the priced cost of a full enqueue or dequeue packet operation.
type OpCost struct {
	Op       string
	FreeList SubOp
	Segment  SubOp
	CopyCPU  int // CPU cycles spent on the copy
	CopyWall int // wall cycles until the copy completes
}

// CPUCycles is the processor time consumed by the operation.
func (o OpCost) CPUCycles() int {
	return o.FreeList.Cycles() + o.Segment.Cycles() + o.CopyCPU
}

// WallCycles is the elapsed time of the operation (DMA overlaps the CPU's
// next work only after the operation's own copy completes, so wall >= CPU).
func (o OpCost) WallCycles() int {
	return o.FreeList.Cycles() + o.Segment.Cycles() + o.CopyWall
}

// EnqueueCost prices the enqueue-packet operation: allocate a segment from
// the free list, link it, copy the data in (Section 5.2's decomposition).
func EnqueueCost(firstSegment bool, engine CopyEngine) OpCost {
	cpu, wall := CopyCost(engine)
	return OpCost{
		Op:       "Enqueue",
		FreeList: DequeueFreeList(),
		Segment:  EnqueueSegment(firstSegment),
		CopyCPU:  cpu,
		CopyWall: wall,
	}
}

// DequeueCost prices the dequeue-packet operation: unlink the head segment,
// return it to the free list, copy the data out.
func DequeueCost(engine CopyEngine) OpCost {
	cpu, wall := CopyCost(engine)
	return OpCost{
		Op:       "Dequeue",
		FreeList: EnqueueFreeList(),
		Segment:  DequeueSegment(),
		CopyCPU:  cpu,
		CopyWall: wall,
	}
}

// Table3Row is one column of Table 3 (an operation's decomposition).
type Table3Row struct {
	Function string
	Enqueue  int // cycles in the Enqueue operation (first/rest reported separately)
	EnqueueR int // "rest" variant where it differs (0 = same)
	Dequeue  int // cycles in the Dequeue operation
}

// Table3 reproduces the paper's Table 3 for the baseline word-copy
// implementation.
func Table3() []Table3Row {
	enq := EnqueueCost(true, WordCopy)
	enqR := EnqueueCost(false, WordCopy)
	deq := DequeueCost(WordCopy)
	return []Table3Row{
		{Function: "Dequeue Free List", Enqueue: enq.FreeList.Cycles(), Dequeue: deq.FreeList.Cycles()},
		{Function: "Enqueue Segment", Enqueue: enq.Segment.Cycles(), EnqueueR: enqR.Segment.Cycles(), Dequeue: deq.Segment.Cycles()},
		{Function: "Copy a segment", Enqueue: enq.CopyCPU, Dequeue: deq.CopyCPU},
		{Function: "Total", Enqueue: enq.CPUCycles(), EnqueueR: enqR.CPUCycles(), Dequeue: deq.CPUCycles()},
	}
}

// TransitMbps returns the sustainable network throughput at the given clock:
// every transiting packet costs one enqueue plus one dequeue of CPU time,
// and a worst-case 64-byte packet is a single (first) segment. This
// reproduces the Section 5.3/5.4 arithmetic: 216+230 = 446 of the 512
// cycles available per 5.12 us at 100 MHz ("for the queue management only,
// all the available processing capacity of the PowerPC core has to be used
// so as to support a full duplex 100Mbps line"), and ~230 Mbps with line
// transactions ("would sustain up to about 200 Mbps").
func TransitMbps(engine CopyEngine, clockMHz float64) float64 {
	if clockMHz <= 0 {
		panic("npu: non-positive clock")
	}
	pair := EnqueueCost(true, engine).CPUCycles() + DequeueCost(engine).CPUCycles()
	pps := clockMHz * 1e6 / float64(pair)
	return pps * PacketBits / 1e6
}

// CPUHeadroom returns the fraction of CPU time left for packet processing
// beyond queue management at the given transit load in Mbps.
func CPUHeadroom(engine CopyEngine, clockMHz, loadMbps float64) float64 {
	max := TransitMbps(engine, clockMHz)
	if loadMbps >= max {
		return 0
	}
	return 1 - loadMbps/max
}
