package npu

// This file adds the dynamic complement to the static Table 3 cost model:
// an event-driven simulation of the Figure 1 prototype forwarding real
// arrival processes. The paper measured its prototype "when real network
// traffic is applied to it" through the MAC + DP-BRAM path; this simulator
// reproduces that setup — packets arrive on the MAC, wait in the staging
// BRAM, the PowerPC runs the enqueue micro-program (and later the dequeue),
// and the measured sustained rate converges to the static TransitMbps
// prediction while also exposing latency and drop behaviour the static
// model cannot show.

import (
	"fmt"

	"npqm/internal/sim"
	"npqm/internal/stats"
	"npqm/internal/traffic"
)

// TransitConfig parameterizes a forwarding simulation.
type TransitConfig struct {
	// Engine selects the segment copy engine (Section 5.3).
	Engine CopyEngine
	// ClockMHz is the CPU/bus clock (0 means the prototype's 100).
	ClockMHz float64
	// OfferedMbps is the offered network load of 64-byte packets.
	OfferedMbps float64
	// StagingFrames is the DP-BRAM capacity in frames (0 means 32: the
	// 4 KB dual-port BRAM holds staged 64-byte frames plus descriptors).
	StagingFrames int
	// Packets is the number of arrivals to simulate (0 means 20000).
	Packets int
	// Seed drives the arrival process.
	Seed uint64
	// Proc selects the arrival process (default CBR).
	Proc traffic.Process
}

func (c TransitConfig) withDefaults() TransitConfig {
	if c.ClockMHz == 0 {
		c.ClockMHz = ClockMHz
	}
	if c.StagingFrames == 0 {
		c.StagingFrames = 32
	}
	if c.Packets == 0 {
		c.Packets = 20000
	}
	return c
}

// TransitResult reports a forwarding run.
type TransitResult struct {
	Offered        float64 // offered load, Mbps
	Delivered      float64 // carried load, Mbps
	Dropped        uint64  // frames lost to staging overflow
	DropRate       float64
	MeanLatencyUs  float64 // arrival to transmit-complete, microseconds
	P99LatencyUs   float64
	CPUUtilization float64 // fraction of cycles the CPU ran queue code
}

// RunTransit simulates the prototype forwarding 64-byte packets at the
// offered load and returns delivered throughput, latency and drop rate.
func RunTransit(cfg TransitConfig) (TransitResult, error) {
	cfg = cfg.withDefaults()
	if cfg.OfferedMbps <= 0 {
		return TransitResult{}, fmt.Errorf("npu: OfferedMbps must be positive, got %v", cfg.OfferedMbps)
	}
	gen, err := traffic.NewGenerator(traffic.Config{
		RateGbps: cfg.OfferedMbps / 1e3,
		Flows:    1024,
		Sizes:    traffic.Min64,
		Proc:     cfg.Proc,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return TransitResult{}, err
	}

	// Per-packet CPU costs in cycles: the enqueue runs when the frame is
	// admitted; the dequeue (towards the MAC) runs right after — the
	// prototype forwards store-and-forward, packet at a time.
	enq := EnqueueCost(true, cfg.Engine).CPUCycles()
	deq := DequeueCost(cfg.Engine).CPUCycles()
	perPacket := sim.Time(enq + deq)

	cyclesPerNs := cfg.ClockMHz / 1e3

	var (
		e         sim.Engine
		staged    int
		queueWait []sim.Time // arrival cycle of each staged frame
		busy      bool
		busyCycle uint64
		delivered uint64
		dropped   uint64
		lat       stats.Welford
		latSamp   []float64
		lastDone  sim.Time
	)

	var serve func(now sim.Time)
	serve = func(now sim.Time) {
		if busy || staged == 0 {
			return
		}
		busy = true
		arrivedAt := queueWait[0]
		queueWait = queueWait[1:]
		e.After(perPacket, func(done sim.Time) {
			staged--
			busy = false
			busyCycle += uint64(perPacket)
			delivered++
			lastDone = done
			l := float64(done-arrivedAt) / cyclesPerNs / 1e3 // microseconds
			lat.Add(l)
			latSamp = append(latSamp, l)
			serve(done)
		})
	}

	arrivals := gen.Take(cfg.Packets)
	for _, a := range arrivals {
		at := sim.Time(a.TimeNs * cyclesPerNs)
		e.At(at, func(now sim.Time) {
			if staged >= cfg.StagingFrames {
				dropped++ // DP-BRAM overflow: the MAC drops the frame
				return
			}
			staged++
			queueWait = append(queueWait, now)
			serve(now)
		})
	}
	e.Run()

	res := TransitResult{
		Offered: cfg.OfferedMbps,
		Dropped: dropped,
	}
	if cfg.Packets > 0 {
		res.DropRate = float64(dropped) / float64(cfg.Packets)
	}
	if lastDone > 0 {
		seconds := float64(lastDone) / (cfg.ClockMHz * 1e6)
		res.Delivered = float64(delivered) * PacketBits / seconds / 1e6
		res.CPUUtilization = float64(busyCycle) / float64(lastDone)
	}
	res.MeanLatencyUs = lat.Mean()
	res.P99LatencyUs = stats.Percentile(latSamp, 99)
	return res, nil
}

// SaturationMbps binary-searches the offered load at which the prototype
// starts dropping more than the tolerance, converging on the dynamic
// equivalent of TransitMbps.
func SaturationMbps(engine CopyEngine, clockMHz float64, seed uint64) (float64, error) {
	lo, hi := 10.0, 2000.0
	for i := 0; i < 18; i++ {
		mid := (lo + hi) / 2
		res, err := RunTransit(TransitConfig{
			Engine: engine, ClockMHz: clockMHz, OfferedMbps: mid,
			Packets: 6000, Seed: seed,
		})
		if err != nil {
			return 0, err
		}
		if res.DropRate > 0.005 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, nil
}
