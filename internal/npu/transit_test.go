package npu

import (
	"math"
	"testing"

	"npqm/internal/traffic"
)

func TestRunTransitValidation(t *testing.T) {
	if _, err := RunTransit(TransitConfig{OfferedMbps: 0}); err == nil {
		t.Fatal("zero load accepted")
	}
}

// TestTransitBelowCapacity: well under the static limit the prototype
// forwards everything with low latency and proportional CPU use.
func TestTransitBelowCapacity(t *testing.T) {
	res, err := RunTransit(TransitConfig{Engine: WordCopy, OfferedMbps: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d frames at half capacity", res.Dropped)
	}
	if math.Abs(res.Delivered-50)/50 > 0.05 {
		t.Fatalf("delivered %v Mbps, want ~50", res.Delivered)
	}
	// CPU utilization should be about offered/capacity = 50/109.
	wantUtil := 50 / TransitMbps(WordCopy, ClockMHz)
	if math.Abs(res.CPUUtilization-wantUtil) > 0.08 {
		t.Fatalf("CPU util %.2f, want ~%.2f", res.CPUUtilization, wantUtil)
	}
	if res.MeanLatencyUs <= 0 || res.MeanLatencyUs > 50 {
		t.Fatalf("latency %v us implausible", res.MeanLatencyUs)
	}
	if res.P99LatencyUs < res.MeanLatencyUs {
		t.Fatal("p99 below mean")
	}
}

// TestTransitOverload: past capacity the prototype saturates — drops mount
// and carried load pins at the static TransitMbps value.
func TestTransitOverload(t *testing.T) {
	static := TransitMbps(WordCopy, ClockMHz)
	res, err := RunTransit(TransitConfig{Engine: WordCopy, OfferedMbps: 2 * static, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DropRate < 0.3 {
		t.Fatalf("drop rate %.2f at 2x capacity, expected heavy loss", res.DropRate)
	}
	if math.Abs(res.Delivered-static)/static > 0.06 {
		t.Fatalf("carried %v Mbps at overload, static model says %v", res.Delivered, static)
	}
	if res.CPUUtilization < 0.95 {
		t.Fatalf("CPU util %.2f at overload, expected saturation", res.CPUUtilization)
	}
}

// TestSaturationMatchesStaticModel: the dynamic saturation point of every
// copy engine converges on the static TransitMbps prediction — the dynamic
// and analytic models agree.
func TestSaturationMatchesStaticModel(t *testing.T) {
	for _, engine := range CopyEngines() {
		static := TransitMbps(engine, ClockMHz)
		dynamic, err := SaturationMbps(engine, ClockMHz, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(dynamic-static) / static; rel > 0.08 {
			t.Errorf("%v: dynamic saturation %.0f Mbps vs static %.0f (off %.0f%%)",
				engine, dynamic, static, rel*100)
		}
	}
}

// TestTransitBurstyTrafficNeedsHeadroom: at the same average load, bursty
// arrivals suffer higher latency than CBR and can drop even below nominal
// capacity — the reason the paper's rule of thumb needs margin.
func TestTransitBurstyTrafficNeedsHeadroom(t *testing.T) {
	load := 0.9 * TransitMbps(WordCopy, ClockMHz)
	cbr, err := RunTransit(TransitConfig{Engine: WordCopy, OfferedMbps: load, Seed: 5, Proc: traffic.CBR})
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := RunTransit(TransitConfig{Engine: WordCopy, OfferedMbps: load, Seed: 5, Proc: traffic.OnOff})
	if err != nil {
		t.Fatal(err)
	}
	if bursty.MeanLatencyUs <= cbr.MeanLatencyUs {
		t.Fatalf("bursty latency %.1f us not above CBR %.1f us", bursty.MeanLatencyUs, cbr.MeanLatencyUs)
	}
	if bursty.DropRate < cbr.DropRate {
		t.Fatalf("bursty drop %.3f below CBR %.3f", bursty.DropRate, cbr.DropRate)
	}
}

// TestTransitLineCopyBeatsWordCopy dynamically, not just statically.
func TestTransitLineCopyBeatsWordCopy(t *testing.T) {
	load := 150.0 // between word capacity (~109) and line capacity (~210)
	word, err := RunTransit(TransitConfig{Engine: WordCopy, OfferedMbps: load, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	line, err := RunTransit(TransitConfig{Engine: LineCopy, OfferedMbps: load, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if word.DropRate < 0.2 {
		t.Fatalf("word copy should be overloaded at %v Mbps (drop %.3f)", load, word.DropRate)
	}
	if line.DropRate > 0.01 {
		t.Fatalf("line copy should carry %v Mbps cleanly (drop %.3f)", load, line.DropRate)
	}
}

// TestTransitDeterminism.
func TestTransitDeterminism(t *testing.T) {
	run := func() TransitResult {
		r, err := RunTransit(TransitConfig{Engine: WordCopy, OfferedMbps: 80, Seed: 11, Packets: 3000})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if run() != run() {
		t.Fatal("non-deterministic transit simulation")
	}
}

func BenchmarkRunTransit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunTransit(TransitConfig{Engine: WordCopy, OfferedMbps: 100, Packets: 2000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
