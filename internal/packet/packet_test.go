package packet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEthRoundTripUntagged(t *testing.T) {
	dst := MAC{1, 2, 3, 4, 5, 6}
	src := MAC{7, 8, 9, 10, 11, 12}
	payload := []byte("hello world")
	frame := BuildEth(dst, src, 0, 0, EtherTypeIPv4, payload)
	if len(frame) != EthMinFrame {
		t.Fatalf("frame not padded: %d", len(frame))
	}
	f, err := ParseEth(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dst != dst || f.Src != src || f.EtherType != EtherTypeIPv4 {
		t.Fatalf("parsed = %+v", f)
	}
	if f.VLAN != 0 || f.PCP != 0 {
		t.Fatal("untagged frame reports a tag")
	}
	if !bytes.HasPrefix(f.Payload, payload) {
		t.Fatal("payload lost")
	}
}

func TestEthRoundTripTagged(t *testing.T) {
	frame := BuildEth(MAC{0xff}, MAC{1}, 42, 5, EtherTypeIPv4, []byte{0xde, 0xad})
	f, err := ParseEth(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.VLAN != 42 || f.PCP != 5 {
		t.Fatalf("tag = vlan %d pcp %d", f.VLAN, f.PCP)
	}
	if f.EtherType != EtherTypeIPv4 {
		t.Fatalf("ethertype = %#x", f.EtherType)
	}
}

func TestEthPCPRange(t *testing.T) {
	// All 8 priority values survive the round trip.
	for pcp := uint8(0); pcp < 8; pcp++ {
		f, err := ParseEth(BuildEth(MAC{}, MAC{}, 1, pcp, EtherTypeIPv4, nil))
		if err != nil {
			t.Fatal(err)
		}
		if f.PCP != pcp {
			t.Fatalf("pcp %d -> %d", pcp, f.PCP)
		}
	}
}

func TestParseEthErrors(t *testing.T) {
	if _, err := ParseEth(make([]byte, 10)); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("err = %v", err)
	}
	// Truncated VLAN tag.
	short := BuildEth(MAC{}, MAC{}, 5, 1, EtherTypeIPv4, nil)[:15]
	if _, err := ParseEth(short); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("err = %v", err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("mac = %s", m)
	}
}

func TestATMCellRoundTrip(t *testing.T) {
	var c ATMCell
	c.VPI, c.VCI, c.PT = 0x5a, 0x123, 1
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	raw := c.Marshal()
	if len(raw) != ATMCellBytes {
		t.Fatalf("cell size = %d", len(raw))
	}
	got, err := ParseATM(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.VPI != c.VPI || got.VCI != c.VCI || got.PT != c.PT {
		t.Fatalf("header mismatch: %+v vs %+v", got, c)
	}
	if got.Payload != c.Payload {
		t.Fatal("payload mismatch")
	}
	if !got.EndOfFrame() {
		t.Fatal("EOF bit lost")
	}
}

func TestParseATMErrors(t *testing.T) {
	if _, err := ParseATM(make([]byte, 52)); !errors.Is(err, ErrBadCell) {
		t.Fatalf("err = %v", err)
	}
}

func TestCellsForPacket(t *testing.T) {
	payload := make([]byte, 100) // 3 cells (48+48+4)
	for i := range payload {
		payload[i] = byte(i)
	}
	cells := CellsForPacket(1, 2, payload)
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	for i, c := range cells {
		if c.VPI != 1 || c.VCI != 2 {
			t.Fatalf("cell %d header wrong", i)
		}
		if c.EndOfFrame() != (i == 2) {
			t.Fatalf("cell %d EOF wrong", i)
		}
	}
	// Reassembly through payload concatenation recovers the prefix.
	var re []byte
	for _, c := range cells {
		re = append(re, c.Payload[:]...)
	}
	if !bytes.Equal(re[:100], payload) {
		t.Fatal("payload corrupted")
	}
	if CellsForPacket(1, 2, nil) != nil {
		t.Fatal("empty payload should produce no cells")
	}
}

func TestFlowKeyHash(t *testing.T) {
	k1 := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	k2 := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 5, Proto: 6}
	if k1.Hash(32768) == k2.Hash(32768) {
		t.Fatal("distinct flows should (almost surely) hash apart")
	}
	if k1.Hash(32768) != k1.Hash(32768) {
		t.Fatal("hash not deterministic")
	}
	// Distribution sanity.
	counts := make([]int, 16)
	for i := uint32(0); i < 16000; i++ {
		counts[FlowKey{SrcIP: i, DstIP: ^i}.Hash(16)]++
	}
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d has %d/16000", b, c)
		}
	}
}

func TestFlowKeyHashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FlowKey{}.Hash(0)
}

func TestSegmentReassembleProperty(t *testing.T) {
	f := func(data []byte) bool {
		segs := Segment(data)
		if len(segs) != SegmentCount(len(data)) {
			return false
		}
		for i, s := range segs {
			if i < len(segs)-1 && len(s) != SegmentBytes {
				return false
			}
			if len(s) == 0 || len(s) > SegmentBytes {
				return false
			}
		}
		return bytes.Equal(Reassemble(segs), data)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	if Segment(nil) != nil {
		t.Fatal("empty data should produce no segments")
	}
	if SegmentCount(0) != 0 || SegmentCount(-1) != 0 {
		t.Fatal("SegmentCount edge cases wrong")
	}
	if SegmentCount(64) != 1 || SegmentCount(65) != 2 {
		t.Fatal("SegmentCount boundaries wrong")
	}
}
