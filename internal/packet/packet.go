// Package packet provides the packet-level vocabulary for the examples and
// traffic generators: Ethernet frames with 802.1Q/802.1p tags, ATM cells,
// flow classification onto the 32K MMS queues, and the byte-level
// segmentation helpers the paper's applications rely on (Section 6 lists
// Ethernet switching with QoS, ATM switching, IP routing and NAT among the
// accelerated applications).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SegmentBytes mirrors the queue engine's fixed segment size.
const SegmentBytes = 64

// Ethernet constants.
const (
	// EthMinFrame is the minimum Ethernet frame (the paper's worst case).
	EthMinFrame = 64
	// EthMaxFrame is the standard maximum (non-jumbo).
	EthMaxFrame = 1518
	// EtherTypeVLAN is the 802.1Q tag protocol identifier.
	EtherTypeVLAN = 0x8100
	// EtherTypeIPv4 identifies IPv4 payloads.
	EtherTypeIPv4 = 0x0800
)

// ATM constants.
const (
	// ATMCellBytes is the fixed ATM cell size.
	ATMCellBytes = 53
	// ATMPayloadBytes is the cell payload (48 bytes after the 5-byte header).
	ATMPayloadBytes = 48
)

// Errors.
var (
	ErrFrameTooShort = errors.New("packet: frame too short")
	ErrBadCell       = errors.New("packet: not a 53-byte ATM cell")
)

// MAC is an Ethernet address.
type MAC [6]byte

// String implements fmt.Stringer.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EthFrame is a parsed Ethernet frame header.
type EthFrame struct {
	Dst, Src  MAC
	VLAN      uint16 // VLAN ID (0 if untagged)
	PCP       uint8  // 802.1p priority code point (0 if untagged)
	EtherType uint16
	Payload   []byte // view into the original frame
	Raw       []byte
}

// ParseEth parses an Ethernet frame, including an optional 802.1Q tag.
func ParseEth(frame []byte) (EthFrame, error) {
	if len(frame) < 14 {
		return EthFrame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(frame))
	}
	var f EthFrame
	f.Raw = frame
	copy(f.Dst[:], frame[0:6])
	copy(f.Src[:], frame[6:12])
	et := binary.BigEndian.Uint16(frame[12:14])
	off := 14
	if et == EtherTypeVLAN {
		if len(frame) < 18 {
			return EthFrame{}, fmt.Errorf("%w: truncated VLAN tag", ErrFrameTooShort)
		}
		tci := binary.BigEndian.Uint16(frame[14:16])
		f.PCP = uint8(tci >> 13)
		f.VLAN = tci & 0x0fff
		et = binary.BigEndian.Uint16(frame[16:18])
		off = 18
	}
	f.EtherType = et
	f.Payload = frame[off:]
	return f, nil
}

// BuildEth constructs an Ethernet frame with an optional 802.1Q tag
// (vlan > 0 or pcp > 0 adds the tag). The frame is padded to EthMinFrame.
func BuildEth(dst, src MAC, vlan uint16, pcp uint8, etherType uint16, payload []byte) []byte {
	tagged := vlan > 0 || pcp > 0
	n := 14 + len(payload)
	if tagged {
		n += 4
	}
	if n < EthMinFrame {
		n = EthMinFrame
	}
	frame := make([]byte, n)
	copy(frame[0:6], dst[:])
	copy(frame[6:12], src[:])
	off := 12
	if tagged {
		binary.BigEndian.PutUint16(frame[off:], EtherTypeVLAN)
		tci := uint16(pcp)<<13 | (vlan & 0x0fff)
		binary.BigEndian.PutUint16(frame[off+2:], tci)
		off += 4
	}
	binary.BigEndian.PutUint16(frame[off:], etherType)
	copy(frame[off+2:], payload)
	return frame
}

// ATMCell is a fixed-size ATM cell.
type ATMCell struct {
	VPI     uint16
	VCI     uint16
	PT      uint8 // payload type (bit 0 of PT = AAL5 end-of-frame marker)
	Payload [ATMPayloadBytes]byte
}

// EndOfFrame reports whether the cell closes an AAL5 frame.
func (c ATMCell) EndOfFrame() bool { return c.PT&1 == 1 }

// Marshal encodes the cell into 53 bytes (simplified header, no HEC
// computation — the queue manager never inspects it).
func (c ATMCell) Marshal() []byte {
	out := make([]byte, ATMCellBytes)
	out[0] = byte(c.VPI >> 4)
	out[1] = byte(c.VPI<<4) | byte(c.VCI>>12)
	out[2] = byte(c.VCI >> 4)
	out[3] = byte(c.VCI<<4) | (c.PT&0x7)<<1
	// out[4] would be the HEC.
	copy(out[5:], c.Payload[:])
	return out
}

// ParseATM decodes a 53-byte cell.
func ParseATM(raw []byte) (ATMCell, error) {
	if len(raw) != ATMCellBytes {
		return ATMCell{}, fmt.Errorf("%w: %d bytes", ErrBadCell, len(raw))
	}
	var c ATMCell
	c.VPI = uint16(raw[0])<<4 | uint16(raw[1])>>4
	c.VCI = uint16(raw[1]&0x0f)<<12 | uint16(raw[2])<<4 | uint16(raw[3])>>4
	c.PT = (raw[3] >> 1) & 0x7
	copy(c.Payload[:], raw[5:])
	return c, nil
}

// FlowKey is the classification tuple mapping traffic onto MMS queues.
type FlowKey struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Hash maps the key onto [0, buckets) with a SplitMix64 finalizer.
func (k FlowKey) Hash(buckets int) uint32 {
	if buckets <= 0 {
		panic("packet: Hash needs positive buckets")
	}
	z := uint64(k.SrcIP)<<32 | uint64(k.DstIP)
	z ^= uint64(k.SrcPort)<<48 | uint64(k.DstPort)<<32 | uint64(k.Proto)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return uint32(z % uint64(buckets))
}

// SegmentCount returns how many 64-byte segments a payload needs.
func SegmentCount(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + SegmentBytes - 1) / SegmentBytes
}

// Segment cuts data into SegmentBytes chunks; the final chunk keeps its
// natural length. It returns views, not copies.
func Segment(data []byte) [][]byte {
	if len(data) == 0 {
		return nil
	}
	out := make([][]byte, 0, SegmentCount(len(data)))
	for off := 0; off < len(data); off += SegmentBytes {
		end := off + SegmentBytes
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end])
	}
	return out
}

// Reassemble concatenates segments back into a packet.
func Reassemble(segments [][]byte) []byte {
	n := 0
	for _, s := range segments {
		n += len(s)
	}
	out := make([]byte, 0, n)
	for _, s := range segments {
		out = append(out, s...)
	}
	return out
}

// CellsForPacket splits an AAL5-style payload into ATM cells on the given
// VPI/VCI, marking the last cell's end-of-frame bit. Short final payloads
// are zero-padded, as AAL5 does.
func CellsForPacket(vpi, vci uint16, payload []byte) []ATMCell {
	if len(payload) == 0 {
		return nil
	}
	n := (len(payload) + ATMPayloadBytes - 1) / ATMPayloadBytes
	cells := make([]ATMCell, n)
	for i := 0; i < n; i++ {
		c := &cells[i]
		c.VPI, c.VCI = vpi, vci
		start := i * ATMPayloadBytes
		end := start + ATMPayloadBytes
		if end > len(payload) {
			end = len(payload)
		}
		copy(c.Payload[:], payload[start:end])
		if i == n-1 {
			c.PT |= 1
		}
	}
	return cells
}
