// Package stats provides the small statistical toolkit used by the
// simulation harnesses: streaming mean/variance, histograms, percentiles and
// utilization counters. Everything is allocation-light and deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates streaming mean and variance using Welford's algorithm,
// which is numerically stable for long simulations.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds the samples of o into w (Chan et al.'s parallel update), as
// if every sample of o had been Added to w. o is unchanged.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of samples.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 for no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 for no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 for no samples).
func (w *Welford) Max() float64 { return w.max }

// String implements fmt.Stringer.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f",
		w.n, w.Mean(), w.Std(), w.min, w.max)
}

// Histogram is a fixed-width bucket histogram over [0, width*buckets), with
// an overflow bucket. It also records exact streaming moments.
type Histogram struct {
	Width    float64
	counts   []uint64
	overflow uint64
	w        Welford
}

// NewHistogram returns a histogram with the given bucket count and width.
func NewHistogram(buckets int, width float64) *Histogram {
	if buckets <= 0 || width <= 0 {
		panic("stats: NewHistogram needs positive buckets and width")
	}
	return &Histogram{Width: width, counts: make([]uint64, buckets)}
}

// Add incorporates x (negative values clamp to bucket 0).
func (h *Histogram) Add(x float64) {
	h.w.Add(x)
	if x < 0 {
		x = 0
	}
	i := int(x / h.Width)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Merge folds the buckets and moments of o into h. Both histograms must
// share the same bucket count and width (it panics otherwise): merging is
// meant for combining per-shard histograms built from one configuration,
// e.g. the engine's per-shard residence-time samples.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.counts) != len(o.counts) || h.Width != o.Width {
		panic("stats: Merge of histograms with different geometry")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.overflow += o.overflow
	h.w.Merge(&o.w)
}

// Clone returns an independent copy of h.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// Reset empties the histogram (buckets, overflow, and moments), keeping
// its geometry — for callers that pool merge targets instead of
// allocating one per snapshot.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.overflow = 0
	h.w = Welford{}
}

// N returns the total number of samples.
func (h *Histogram) N() uint64 { return h.w.N() }

// Mean returns the exact sample mean.
func (h *Histogram) Mean() float64 { return h.w.Mean() }

// Max returns the exact maximum sample.
func (h *Histogram) Max() float64 { return h.w.Max() }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using the
// bucket boundaries; overflow samples report the exact observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: Quantile out of range")
	}
	total := h.w.N()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.Width
		}
	}
	return h.w.Max()
}

// Counter is a named monotonic event counter.
type Counter struct {
	Name string
	n    uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// Addn adds n.
func (c *Counter) Addn(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Utilization tracks busy/total cycle counts for a resource.
type Utilization struct {
	Busy  uint64
	Total uint64
}

// Tick records one cycle, busy or idle.
func (u *Utilization) Tick(busy bool) {
	u.Total++
	if busy {
		u.Busy++
	}
}

// Value returns the busy fraction in [0,1] (0 if no cycles recorded).
func (u *Utilization) Value() float64 {
	if u.Total == 0 {
		return 0
	}
	return float64(u.Busy) / float64(u.Total)
}

// Loss returns 1 - Value(), the paper's "throughput loss" metric.
func (u *Utilization) Loss() float64 { return 1 - u.Value() }

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sparkline renders values as a compact ASCII bar string, used by the
// example binaries for quick visual inspection of distributions.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if max <= 0 {
			b.WriteRune(glyphs[0])
			continue
		}
		i := int(v / max * float64(len(glyphs)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(glyphs) {
			i = len(glyphs) - 1
		}
		b.WriteRune(glyphs[i])
	}
	return b.String()
}
