package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
	if w.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatal("single-sample Welford wrong")
	}
}

// Property: Welford mean matches naive mean.
func TestWelfordMatchesNaive(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		// Filter non-finite fuzz inputs.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		naive := sum / float64(len(clean))
		return math.Abs(w.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1.0)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	if q := h.Quantile(0.5); q < 4 || q > 6 {
		t.Fatalf("median = %v", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Fatalf("q100 = %v", q)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(4, 1.0)
	h.Add(100)
	h.Add(-5) // clamps to bucket 0
	if h.N() != 2 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Quantile(1.0) != 100 {
		t.Fatalf("overflow quantile = %v", h.Quantile(1.0))
	}
	if h.Max() != 100 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(4, 1.0)
	if h.Quantile(0.9) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "ops"}
	c.Inc()
	c.Addn(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	if u.Value() != 0 {
		t.Fatal("empty utilization not 0")
	}
	for i := 0; i < 10; i++ {
		u.Tick(i < 3)
	}
	if math.Abs(u.Value()-0.3) > 1e-12 {
		t.Fatalf("value = %v", u.Value())
	}
	if math.Abs(u.Loss()-0.7) > 1e-12 {
		t.Fatalf("loss = %v", u.Loss())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated input")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("single-element percentile wrong")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline not empty")
	}
	s := Sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length wrong: %q", s)
	}
	// All-zero input should render lowest glyph without dividing by zero.
	z := Sparkline([]float64{0, 0})
	if len([]rune(z)) != 2 {
		t.Fatalf("zero sparkline wrong: %q", z)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i & 1023))
	}
}

func TestWelfordMerge(t *testing.T) {
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		x := float64(i%37) * 1.5
		all.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if d := a.Mean() - all.Mean(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	if d := a.Var() - all.Var(); d > 1e-6 || d < -1e-6 {
		t.Fatalf("merged variance %v, want %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged min/max (%v, %v), want (%v, %v)", a.Min(), a.Max(), all.Min(), all.Max())
	}
	// Merging into an empty accumulator copies.
	var c Welford
	c.Merge(&a)
	if c.N() != a.N() || c.Mean() != a.Mean() {
		t.Fatal("merge into empty accumulator lost samples")
	}
}

func TestHistogramMergeAndClone(t *testing.T) {
	all := NewHistogram(16, 1)
	a, b := NewHistogram(16, 1), NewHistogram(16, 1)
	for i := 0; i < 400; i++ {
		x := float64(i % 20) // some land in overflow (>= 16)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	clone := a.Clone()
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Fatalf("merged q%.2f = %v, want %v", q, got, want)
		}
	}
	if a.Max() != all.Max() {
		t.Fatalf("merged max %v, want %v", a.Max(), all.Max())
	}
	// The clone must be unaffected by the merge into its source.
	if clone.N() != 200 {
		t.Fatalf("clone N = %d, want 200", clone.N())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched geometries did not panic")
		}
	}()
	a.Merge(NewHistogram(8, 1))
}
