package ixp

import (
	"math"
	"testing"
)

// paper Table 2, in Kpps.
var paperTable2 = []struct {
	queues int
	oneME  float64
	sixME  float64
}{
	{16, 956, 5600},
	{128, 390, 2300},
	{1024, 60, 300},
}

// TestSingleEngineMatchesPaper: the uncontended per-packet cycle budget must
// reproduce the single-microengine column of Table 2 within 2%.
func TestSingleEngineMatchesPaper(t *testing.T) {
	for _, row := range paperTable2 {
		p, err := ProfileForQueues(row.queues)
		if err != nil {
			t.Fatal(err)
		}
		got := p.SingleEngineKpps()
		if rel := math.Abs(got-row.oneME) / row.oneME; rel > 0.02 {
			t.Errorf("%d queues: %0.f Kpps, paper %0.f (off %.1f%%)",
				row.queues, got, row.oneME, rel*100)
		}
	}
}

// TestTable2MatchesPaper: the full contention simulation must reproduce both
// columns within 5%.
func TestTable2MatchesPaper(t *testing.T) {
	rows, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, row := range rows {
		want := paperTable2[i]
		if row.Queues != want.queues {
			t.Fatalf("row %d queues = %d", i, row.Queues)
		}
		if rel := math.Abs(row.OneEngine.Kpps-want.oneME) / want.oneME; rel > 0.05 {
			t.Errorf("%d queues 1ME: %.0f Kpps, paper %.0f", row.Queues, row.OneEngine.Kpps, want.oneME)
		}
		if rel := math.Abs(row.SixEngines.Kpps-want.sixME) / want.sixME; rel > 0.05 {
			t.Errorf("%d queues 6ME: %.0f Kpps, paper %.0f", row.Queues, row.SixEngines.Kpps, want.sixME)
		}
	}
}

// TestPaper150MbpsClaim: "the whole of the IXP cannot support more than
// 150Mbps of network bandwidth, even if only 1K queues are needed".
func TestPaper150MbpsClaim(t *testing.T) {
	p, _ := ProfileForQueues(1024)
	six, err := Run(Config{Profile: p, Engines: 6})
	if err != nil {
		t.Fatal(err)
	}
	mbps := six.MbpsAt64B()
	if mbps > 170 || mbps < 130 {
		t.Fatalf("6-ME 1K-queue throughput = %.0f Mbps, paper bounds it at ~150", mbps)
	}
}

// TestSublinearScaling: adding engines must help, but never superlinearly,
// and the 1024-queue tier must scale visibly worse than the 16-queue tier.
func TestSublinearScaling(t *testing.T) {
	speedup := func(p Profile) float64 {
		one, err := Run(Config{Profile: p, Engines: 1})
		if err != nil {
			t.Fatal(err)
		}
		six, err := Run(Config{Profile: p, Engines: 6})
		if err != nil {
			t.Fatal(err)
		}
		return six.Kpps / one.Kpps
	}
	s16 := speedup(Tier16)
	s1024 := speedup(Tier1024)
	if s16 > 6.01 || s1024 > 6.01 {
		t.Fatalf("superlinear scaling: %v %v", s16, s1024)
	}
	if s16 < 5 {
		t.Fatalf("16-queue tier should scale almost linearly, got %.2fx", s16)
	}
	if s1024 > s16-0.3 {
		t.Fatalf("1024-queue tier should scale worse (SDRAM contention): %.2fx vs %.2fx", s1024, s16)
	}
}

// TestMonotoneInEngines: throughput must not decrease with engine count.
func TestMonotoneInEngines(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 6; n++ {
		r, err := Run(Config{Profile: Tier128, Engines: n, Packets: 800})
		if err != nil {
			t.Fatal(err)
		}
		if r.Kpps < prev*0.99 {
			t.Fatalf("throughput fell from %.0f to %.0f Kpps at %d engines", prev, r.Kpps, n)
		}
		prev = r.Kpps
	}
}

// TestSDRAMSaturates: at the 1024-queue tier with six engines the SDRAM
// unit must be the bottleneck (high utilization), while at 16 queues no
// unit saturates.
func TestSDRAMSaturates(t *testing.T) {
	six1024, err := Run(Config{Profile: Tier1024, Engines: 6})
	if err != nil {
		t.Fatal(err)
	}
	if six1024.UnitBusy[SDRAM] < 0.85 {
		t.Fatalf("SDRAM busy = %.2f, expected saturation", six1024.UnitBusy[SDRAM])
	}
	six16, err := Run(Config{Profile: Tier16, Engines: 6})
	if err != nil {
		t.Fatal(err)
	}
	for u, busy := range six16.UnitBusy {
		if busy > 0.85 {
			t.Fatalf("16-queue tier saturates %v (%.2f)", Unit(u), busy)
		}
	}
}

func TestProfileForQueuesBounds(t *testing.T) {
	if _, err := ProfileForQueues(0); err == nil {
		t.Fatal("zero queues accepted")
	}
	if _, err := ProfileForQueues(4096); err == nil {
		t.Fatal("beyond-tier queue count accepted")
	}
	p, err := ProfileForQueues(100)
	if err != nil || p.Name != Tier128.Name {
		t.Fatalf("100 queues -> %v (%v)", p.Name, err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Profile: Tier16, Engines: 0}); err == nil {
		t.Fatal("zero engines accepted")
	}
	if _, err := Run(Config{Profile: Tier16, Engines: 7}); err == nil {
		t.Fatal("7 engines accepted")
	}
	if _, err := Run(Config{Engines: 1}); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(Config{Profile: Tier128, Engines: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Profile: Tier128, Engines: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestUnitStrings(t *testing.T) {
	if Scratch.String() != "scratch" || SRAM.String() != "sram" || SDRAM.String() != "sdram" {
		t.Fatal("Unit.String broken")
	}
	if Unit(9).String() == "" {
		t.Fatal("unknown unit must render")
	}
}

func TestTiming(t *testing.T) {
	lat, occ := Timing(SDRAM)
	if lat < occ || lat <= 0 {
		t.Fatalf("SDRAM timing = %d/%d", lat, occ)
	}
}

func BenchmarkRunSixEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Profile: Tier128, Engines: 6, Packets: 500}); err != nil {
			b.Fatal(err)
		}
	}
}
