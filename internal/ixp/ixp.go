// Package ixp models software queue management on the Intel IXP1200 network
// processor, reproducing Table 2 of the paper: the packet rate one or six
// 200 MHz RISC microengines sustain when the queue count forces queue state
// out of the on-chip Scratch memory into external SRAM and SDRAM.
//
// # Model
//
// Each microengine runs the queue-management loop for one packet at a time:
// a fixed instruction budget plus a tier-dependent sequence of memory
// accesses. Following the paper's observation (citing [10]) that the context
// switch overhead of the IXP's hardware multithreading exceeds the memory
// latency for this workload, every access blocks its microengine.
//
// The three memories are shared, single-ported units: an access occupies its
// unit for the pipeline occupancy (during which other microengines queue)
// and returns data after the latency. With six engines the shared units
// contend — mildly for Scratch and SRAM, severely for SDRAM — which is what
// makes the six-engine numbers sublinear, exactly as in Table 2.
//
// # Queue-count tiers
//
// The per-packet access profile depends on how much queue state fits
// on chip (Section 4):
//
//   - up to 16 queues: every queue descriptor lives in Scratch/registers;
//   - up to 128 queues: descriptors spill to external SRAM;
//   - beyond that (1K queues): descriptors and free-list pages thrash
//     between SRAM and SDRAM, and the per-packet cost is dominated by
//     SDRAM traffic.
//
// The profile constants are calibrated so the single-engine rates match
// Table 2 (956/390/60 Kpps); the six-engine rates are then emergent from
// the contention simulation. See EXPERIMENTS.md.
package ixp

import (
	"fmt"

	"npqm/internal/sim"
	"npqm/internal/xrand"
)

// Architectural constants of the IXP1200 (from the paper and the Intel
// IXP1200 datasheet).
const (
	// ClockMHz is the microengine clock.
	ClockMHz = 200
	// NumMicroengines is the full complement of RISC engines.
	NumMicroengines = 6
	// PacketBits is the worst-case packet size the paper uses (64 bytes).
	PacketBits = 64 * 8
)

// Unit identifies a shared memory unit.
type Unit int

// The IXP1200's three data memories.
const (
	Scratch Unit = iota // 4KB on-chip scratchpad
	SRAM                // external SRAM (pointers, descriptors)
	SDRAM               // external SDRAM (packet data, spilled state)
	numUnits
)

// String implements fmt.Stringer.
func (u Unit) String() string {
	switch u {
	case Scratch:
		return "scratch"
	case SRAM:
		return "sram"
	case SDRAM:
		return "sdram"
	default:
		return fmt.Sprintf("unit(%d)", int(u))
	}
}

// unitTiming holds the blocking latency and pipeline occupancy of a unit,
// in microengine cycles. Latencies follow the IXP1200 documentation ranges;
// occupancy is the time the unit cannot accept another access.
type unitTiming struct {
	latency   int
	occupancy int
}

// Occupancy covers the command phase on the shared command bus plus the
// data burst on the unit's pins; it bounds each unit's aggregate access
// rate and therefore the six-engine contention (it does not affect a single
// blocking engine, whose cost is the latency).
var timings = [numUnits]unitTiming{
	Scratch: {latency: 12, occupancy: 3},
	SRAM:    {latency: 40, occupancy: 5},
	SDRAM:   {latency: 45, occupancy: 10},
}

// Timing returns the (latency, occupancy) of a unit in cycles.
func Timing(u Unit) (latency, occupancy int) {
	t := timings[u]
	return t.latency, t.occupancy
}

// Profile is the per-packet cost profile of the queue-management loop.
type Profile struct {
	Name     string
	Queues   int // queue count this tier covers (upper bound)
	Compute  int // instruction cycles per packet
	Accesses [numUnits]int
}

// SingleEngineCycles returns the blocking per-packet cycle count of one
// uncontended microengine: compute plus every access at full latency.
func (p Profile) SingleEngineCycles() int {
	total := p.Compute
	for u, n := range p.Accesses {
		total += n * timings[u].latency
	}
	return total
}

// SingleEngineKpps converts the uncontended cycle count to a packet rate.
func (p Profile) SingleEngineKpps() float64 {
	return ClockMHz * 1e3 / float64(p.SingleEngineCycles())
}

// Tier profiles. Compute covers parsing, flow lookup and branch overhead;
// the access counts follow the queue-state placement of each tier and are
// calibrated to Table 2's single-engine column (see package comment).
var (
	// Tier16: queue table in Scratch — 7 accesses cover the descriptor
	// read/update, the free-list pop/push and the occupancy counters.
	Tier16 = Profile{Name: "16 queues", Queues: 16, Compute: 125,
		Accesses: [numUnits]int{Scratch: 7}}
	// Tier128: descriptors spill to SRAM (9 accesses: descriptor read and
	// writeback, head/tail pointers, free list), Scratch keeps only the
	// hot occupancy bitmap.
	Tier128 = Profile{Name: "128 queues", Queues: 128, Compute: 125,
		Accesses: [numUnits]int{Scratch: 2, SRAM: 9}}
	// Tier1024: the working set no longer fits SRAM; descriptors,
	// free-list pages and the packet payload staging all round-trip
	// through SDRAM (64 accesses), which dominates the packet budget.
	Tier1024 = Profile{Name: "1024 queues", Queues: 1024, Compute: 125,
		Accesses: [numUnits]int{Scratch: 2, SRAM: 9, SDRAM: 64}}
)

// ProfileForQueues returns the tier covering the given queue count.
func ProfileForQueues(queues int) (Profile, error) {
	switch {
	case queues <= 0:
		return Profile{}, fmt.Errorf("ixp: queue count must be positive, got %d", queues)
	case queues <= 16:
		return Tier16, nil
	case queues <= 128:
		return Tier128, nil
	case queues <= 1024:
		return Tier1024, nil
	default:
		return Profile{}, fmt.Errorf("ixp: no measured tier beyond 1024 queues (got %d)", queues)
	}
}

// Config parameterizes a contention simulation.
type Config struct {
	Profile Profile
	Engines int // number of microengines (1..6)
	// Packets is the number of packets each engine completes
	// (0 means 2000).
	Packets int
	// Seed drives the per-step compute jitter (0 means 1). Real firmware
	// loops have data-dependent branches, so engines drift out of phase
	// instead of running in deterministic lock-step; without jitter six
	// identical staggered engines would never collide on a shared unit.
	Seed uint64
}

// Result reports a simulation run.
type Result struct {
	Engines        int
	PacketsServed  uint64
	ElapsedCycles  uint64
	Kpps           float64
	UnitBusy       [numUnits]float64 // utilization of each memory unit
	MeanWaitCycles float64           // mean queueing wait per access
}

// MbpsAt64B converts the packet rate to line throughput for worst-case
// 64-byte packets (the paper's "150 Mbps" argument).
func (r Result) MbpsAt64B() float64 { return r.Kpps * 1e3 * PacketBits / 1e6 }

// server is a single-ported memory unit with a FIFO of blocked engines.
type server struct {
	timing   unitTiming
	freeAt   sim.Time
	busy     uint64
	accesses uint64
	waited   uint64
}

// request serves one access starting no earlier than now, returning when the
// data is available to the engine.
func (s *server) request(now sim.Time) (dataAt sim.Time) {
	start := now
	if s.freeAt > start {
		s.waited += uint64(s.freeAt - start)
		start = s.freeAt
	}
	s.freeAt = start + sim.Time(s.timing.occupancy)
	s.busy += uint64(s.timing.occupancy)
	s.accesses++
	return start + sim.Time(s.timing.latency)
}

// Run simulates the configured engines until each has completed its packet
// quota and reports the aggregate rate.
func Run(cfg Config) (Result, error) {
	if cfg.Engines < 1 || cfg.Engines > NumMicroengines {
		return Result{}, fmt.Errorf("ixp: engines must be 1..%d, got %d", NumMicroengines, cfg.Engines)
	}
	if cfg.Profile.SingleEngineCycles() <= 0 {
		return Result{}, fmt.Errorf("ixp: empty profile")
	}
	packets := cfg.Packets
	if packets == 0 {
		packets = 2000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := xrand.New(seed)

	var e sim.Engine
	units := [numUnits]*server{}
	for u := range units {
		units[u] = &server{timing: timings[u]}
	}

	// Flatten the access sequence of one packet: compute is split around
	// the accesses (half before, half interleaved) — the exact placement
	// does not change steady-state throughput for blocking accesses, only
	// the phase; we interleave uniformly for realism.
	type step struct {
		unit    Unit
		compute int // compute cycles preceding this access
	}
	var steps []step
	totalAccesses := 0
	for _, n := range cfg.Profile.Accesses {
		totalAccesses += n
	}
	if totalAccesses == 0 {
		steps = append(steps, step{unit: numUnits, compute: cfg.Profile.Compute})
	} else {
		per := cfg.Profile.Compute / totalAccesses
		rem := cfg.Profile.Compute - per*totalAccesses
		for u := Unit(0); u < numUnits; u++ {
			for i := 0; i < cfg.Profile.Accesses[u]; i++ {
				c := per
				if rem > 0 {
					c++
					rem--
				}
				steps = append(steps, step{unit: u, compute: c})
			}
		}
	}

	var (
		done      int
		servedAll uint64
		finish    sim.Time
	)
	perEngine := make([]int, cfg.Engines)

	var runStep func(engine, idx int) func(sim.Time)
	runStep = func(engine, idx int) func(sim.Time) {
		return func(now sim.Time) {
			if idx == len(steps) {
				// Packet complete.
				servedAll++
				perEngine[engine]++
				if perEngine[engine] == packets {
					done++
					if now > finish {
						finish = now
					}
					return
				}
				e.At(now, runStep(engine, 0))
				return
			}
			st := steps[idx]
			// ±1 cycle of branch jitter keeps engines from phase-locking.
			compute := st.compute + rng.Intn(3) - 1
			if compute < 0 {
				compute = 0
			}
			after := now + sim.Time(compute)
			if st.unit == numUnits { // pure compute step
				e.At(after, runStep(engine, idx+1))
				return
			}
			// The access is issued after the step's compute; the engine
			// resumes when the data returns.
			e.At(after, func(t sim.Time) {
				dataAt := units[st.unit].request(t)
				e.At(dataAt, runStep(engine, idx+1))
			})
		}
	}

	// Stagger engine start-up by a few cycles each, as the real firmware
	// does, to avoid artificial lock-step.
	for eng := 0; eng < cfg.Engines; eng++ {
		e.At(sim.Time(eng*17), runStep(eng, 0))
	}
	for done < cfg.Engines && e.Step() {
	}

	elapsed := uint64(finish)
	res := Result{
		Engines:       cfg.Engines,
		PacketsServed: servedAll,
		ElapsedCycles: elapsed,
	}
	if elapsed > 0 {
		seconds := float64(elapsed) / (ClockMHz * 1e6)
		res.Kpps = float64(servedAll) / seconds / 1e3
	}
	var totalWait, totalAcc uint64
	for u, s := range units {
		if elapsed > 0 {
			res.UnitBusy[u] = float64(s.busy) / float64(elapsed)
		}
		totalWait += s.waited
		totalAcc += s.accesses
	}
	if totalAcc > 0 {
		res.MeanWaitCycles = float64(totalWait) / float64(totalAcc)
	}
	return res, nil
}

// Table2Row is one cell pair of Table 2.
type Table2Row struct {
	Queues     int
	OneEngine  Result
	SixEngines Result
}

// RunTable2 reproduces Table 2: 16/128/1024 queues on 1 and 6 microengines.
func RunTable2() ([]Table2Row, error) {
	rows := make([]Table2Row, 0, 3)
	for _, q := range []int{16, 128, 1024} {
		p, err := ProfileForQueues(q)
		if err != nil {
			return nil, err
		}
		one, err := Run(Config{Profile: p, Engines: 1})
		if err != nil {
			return nil, err
		}
		six, err := Run(Config{Profile: p, Engines: 6})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Queues: q, OneEngine: one, SixEngines: six})
	}
	return rows, nil
}
