// Package sram models the ZBT (Zero Bus Turnaround) SRAM that holds the
// queue-management pointer structures in both the reference NPU (Figure 1)
// and the MMS (Figure 2).
//
// ZBT SRAM accepts one access per clock cycle with no dead cycles between
// reads and writes (that is what "zero bus turnaround" means), and returns
// read data after a fixed pipeline latency. The model therefore needs only
// two numbers: the pipeline latency and the clock period; contention is
// impossible by construction as long as the issuing block respects the
// one-access-per-cycle rule, which the timed models do by scheduling at most
// one pointer-memory micro-operation per cycle.
package sram

import "fmt"

// DefaultLatencyCycles is the read pipeline depth of a typical ZBT SRAM
// (registered input and output, as on the Virtex-II Pro boards the paper
// used).
const DefaultLatencyCycles = 2

// Config describes a ZBT SRAM device.
type Config struct {
	// Words is the number of addressable words.
	Words int
	// LatencyCycles is the read pipeline depth (0 means default).
	LatencyCycles int
}

// Memory is a functional + cycle-accounting ZBT SRAM model storing 32-bit
// words (pointer structures in the paper use 32-bit pointers).
type Memory struct {
	cfg    Config
	words  []uint32
	reads  uint64
	writes uint64
}

// New returns a Memory of the given size.
func New(cfg Config) (*Memory, error) {
	if cfg.Words <= 0 {
		return nil, fmt.Errorf("sram: Words must be positive, got %d", cfg.Words)
	}
	if cfg.LatencyCycles < 0 {
		return nil, fmt.Errorf("sram: negative latency %d", cfg.LatencyCycles)
	}
	if cfg.LatencyCycles == 0 {
		cfg.LatencyCycles = DefaultLatencyCycles
	}
	return &Memory{cfg: cfg, words: make([]uint32, cfg.Words)}, nil
}

// Latency returns the read pipeline depth in cycles.
func (m *Memory) Latency() int { return m.cfg.LatencyCycles }

// Words returns the addressable size.
func (m *Memory) Words() int { return len(m.words) }

// Read returns the word at addr, counting one read access.
func (m *Memory) Read(addr uint32) uint32 {
	m.reads++
	return m.words[addr]
}

// Write stores v at addr, counting one write access.
func (m *Memory) Write(addr uint32, v uint32) {
	m.writes++
	m.words[addr] = v
}

// Accesses returns the cumulative read and write counts; the timed models
// convert these into pointer-memory bus occupancy.
func (m *Memory) Accesses() (reads, writes uint64) { return m.reads, m.writes }

// ResetCounters zeroes the access counters (contents are preserved).
func (m *Memory) ResetCounters() { m.reads, m.writes = 0, 0 }
