package sram

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Words: 0}); err == nil {
		t.Fatal("expected error for zero words")
	}
	if _, err := New(Config{Words: 8, LatencyCycles: -1}); err == nil {
		t.Fatal("expected error for negative latency")
	}
	m, err := New(Config{Words: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency() != DefaultLatencyCycles {
		t.Fatalf("default latency = %d", m.Latency())
	}
	if m.Words() != 8 {
		t.Fatalf("words = %d", m.Words())
	}
}

func TestReadWrite(t *testing.T) {
	m, _ := New(Config{Words: 16, LatencyCycles: 1})
	m.Write(3, 0xdeadbeef)
	if v := m.Read(3); v != 0xdeadbeef {
		t.Fatalf("read = %#x", v)
	}
	if v := m.Read(4); v != 0 {
		t.Fatalf("uninitialized word = %#x, want 0", v)
	}
	r, w := m.Accesses()
	if r != 2 || w != 1 {
		t.Fatalf("accesses = %d reads %d writes", r, w)
	}
	m.ResetCounters()
	r, w = m.Accesses()
	if r != 0 || w != 0 {
		t.Fatal("counters not reset")
	}
	if v := m.Read(3); v != 0xdeadbeef {
		t.Fatalf("contents lost on counter reset: %#x", v)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m, _ := New(Config{Words: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range address")
		}
	}()
	m.Read(4)
}
