package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values out of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not be a shifted copy of the parent stream.
	p := make([]uint64, 100)
	for i := range p {
		p[i] = parent.Uint64()
	}
	for i := 0; i < 100; i++ {
		v := child.Uint64()
		for _, pv := range p {
			if v == pv {
				t.Fatalf("child value %#x collides with parent stream", v)
			}
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const lambda = 2.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64(lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.02 {
		t.Fatalf("exp mean = %v, want ~%v", mean, 1/lambda)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(17)
	const p = 0.25
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(p))
	}
	mean := sum / n
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, 1/p)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	s := New(19)
	for i := 0; i < 100; i++ {
		if g := s.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", g)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed element multiset: %v", xs)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	s := New(31)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(37)
	const p = 0.3
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bool(%v) frequency = %v", p, got)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}
