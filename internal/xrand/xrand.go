// Package xrand provides small, fast, deterministic pseudo-random number
// generators for the simulation models in this repository.
//
// The models must be reproducible bit-for-bit across runs and platforms, so
// nothing in this module uses the global math/rand source or wall-clock
// seeding. Every experiment takes an explicit seed and derives all of its
// randomness from an xrand.Source.
package xrand

import "math"

// Source is a deterministic 64-bit PRNG. The core generator is
// SplitMix64 (Steele, Lea, Flood 2014), which passes BigCrush, has a full
// 2^64 period, and needs only a single uint64 of state. That is plenty for
// driving synthetic traffic and bank-address patterns.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split returns a new Source whose stream is independent from s.
// It is used to hand child components their own generators so that adding a
// consumer of randomness in one block does not perturb another block.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32-bit value in the stream.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits give a uniformly distributed double in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate lambda
// (mean 1/lambda). It is used for Poisson inter-arrival times.
func (s *Source) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: ExpFloat64 called with lambda <= 0")
	}
	u := s.Float64()
	// Guard against log(0).
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / lambda
}

// Geometric returns a geometrically distributed value in {1, 2, ...} with
// success probability p (mean 1/p). It is used for burst lengths.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return 1 + int(math.Floor(math.Log(u)/math.Log(1-p)))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen index weighted by weights.
// It panics if all weights are zero or negative.
func (s *Source) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: Choice with no positive weights")
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
